#include "sim/report.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"

namespace inca {
namespace sim {

namespace {

/** Process-wide registry ScopedPhaseTimer records into. */
std::mutex gPhaseMutex;
std::vector<PhaseTime> gPhases;

/** Timers currently in scope; guards their flushed_ flags too. */
std::mutex gLiveMutex;
std::vector<ScopedPhaseTimer *> gLiveTimers;
std::once_flag gFlushHook;

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ScopedPhaseTimer::ScopedPhaseTimer(std::string phase)
    : phase_(std::move(phase)),
      span_(trace::spanName("phase ", phase_)),
      start_(std::chrono::steady_clock::now())
{
    std::call_once(gFlushHook,
                   [] { trace::atFlush(flushLivePhaseTimers); });
    std::lock_guard<std::mutex> lock(gLiveMutex);
    gLiveTimers.push_back(this);
}

ScopedPhaseTimer::~ScopedPhaseTimer()
{
    const double seconds = elapsedSeconds(start_);
    bool flushed;
    {
        std::lock_guard<std::mutex> lock(gLiveMutex);
        gLiveTimers.erase(std::find(gLiveTimers.begin(),
                                    gLiveTimers.end(), this));
        flushed = flushed_;
    }
    if (flushed)
        return; // an early trace flush already recorded this phase
    std::lock_guard<std::mutex> lock(gPhaseMutex);
    gPhases.push_back({phase_, seconds});
}

void
flushLivePhaseTimers()
{
    std::lock_guard<std::mutex> liveLock(gLiveMutex);
    for (ScopedPhaseTimer *t : gLiveTimers) {
        if (t->flushed_)
            continue;
        t->flushed_ = true;
        const double seconds = elapsedSeconds(t->start_);
        {
            std::lock_guard<std::mutex> lock(gPhaseMutex);
            gPhases.push_back({t->phase_, seconds});
        }
        // The timer's own Span only emits at scope exit, which a
        // fatal() never reaches -- emit the elapsed part directly.
        const auto durUs = std::int64_t(1e6 * seconds);
        trace::emitComplete(trace::spanName("phase ", t->phase_),
                            trace::nowMicros() - durUs, durUs);
    }
}

std::vector<PhaseTime>
phaseTimes()
{
    std::lock_guard<std::mutex> lock(gPhaseMutex);
    return gPhases;
}

void
clearPhaseTimes()
{
    std::lock_guard<std::mutex> lock(gPhaseMutex);
    gPhases.clear();
}

void
printCacheStats(std::FILE *out)
{
    const auto stats = cacheStats();
    bool any = false;
    for (const auto &s : stats)
        any = any || s.hits + s.misses > 0;
    if (!any)
        return;
    std::fprintf(out, "\nevaluation caches (INCA_CACHE %s):\n",
                 cacheEnabled() ? "on" : "off");
    std::uint64_t hits = 0, misses = 0;
    double saved = 0.0;
    for (const auto &s : stats) {
        if (s.hits + s.misses == 0)
            continue;
        std::fprintf(out,
                     "  %-20s %9llu hits %9llu misses  %5.1f%% hit "
                     "rate  %7llu entries  %6llu evicted\n",
                     s.name.c_str(), (unsigned long long)s.hits,
                     (unsigned long long)s.misses, 100.0 * s.hitRate(),
                     (unsigned long long)s.entries,
                     (unsigned long long)s.evictions);
        hits += s.hits;
        misses += s.misses;
        saved += s.estimatedSavedSeconds();
    }
    const double total = double(hits + misses);
    std::fprintf(out,
                 "  %-20s %9llu hits %9llu misses  %5.1f%% hit rate  "
                 "~%.1f ms recompute time saved\n",
                 "total", (unsigned long long)hits,
                 (unsigned long long)misses,
                 total == 0.0 ? 0.0 : 100.0 * double(hits) / total,
                 1e3 * saved);
}

void
printPhaseTimes(std::FILE *out)
{
    const auto phases = phaseTimes();
    if (!phases.empty()) {
        std::fprintf(out, "\nwall-clock per phase (%d threads):\n",
                     ThreadPool::globalThreadCount());
        double total = 0.0;
        for (const auto &p : phases) {
            std::fprintf(out, "  %-40s %8.1f ms\n", p.phase.c_str(),
                         1e3 * p.seconds);
            total += p.seconds;
        }
        std::fprintf(out, "  %-40s %8.1f ms\n", "total", 1e3 * total);
    }
    printCacheStats(out);
    metrics::printText(out);
}

void
printPhaseTimes()
{
    printPhaseTimes(stdout);
}

Comparison
compare(const core::IncaEngine &incaEngine,
        const baseline::BaselineEngine &baseEngine,
        const nn::NetworkDesc &net, int batchSize, arch::Phase phase)
{
    Comparison c;
    c.network = net.name;
    const auto t0 = std::chrono::steady_clock::now();
    if (phase == arch::Phase::Inference)
        c.inca = incaEngine.inference(net, batchSize);
    else
        c.inca = incaEngine.training(net, batchSize);
    const auto t1 = std::chrono::steady_clock::now();
    if (phase == arch::Phase::Inference)
        c.baseline = baseEngine.inference(net, batchSize);
    else
        c.baseline = baseEngine.training(net, batchSize);
    c.incaSeconds = std::chrono::duration<double>(t1 - t0).count();
    c.baselineSeconds = elapsedSeconds(t1);
    return c;
}

std::vector<Comparison>
compareSuite(const core::IncaEngine &incaEngine,
             const baseline::BaselineEngine &baseEngine,
             const std::vector<nn::NetworkDesc> &nets, int batchSize,
             arch::Phase phase)
{
    // Networks are independent design points: fan them across the
    // pool, each writing its own pre-sized slot so the output order
    // (and every number in it) is identical at any thread count.
    std::vector<Comparison> out(nets.size());
    parallel_for(std::int64_t(nets.size()), 1,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         out[size_t(i)] =
                             compare(incaEngine, baseEngine,
                                     nets[size_t(i)], batchSize, phase);
                 });
    return out;
}

std::map<std::string, double>
energyBreakdown(const arch::RunCost &run)
{
    std::map<std::string, double> groups;
    groups["dram"] = run.sum("energy.dram");
    groups["buffer"] = run.sum("energy.buffer");
    groups["array"] = run.sum("energy.array");
    groups["adc"] = run.sum("energy.adc");
    groups["dac"] = run.sum("energy.dac");
    groups["digital"] = run.sum("energy.digital");
    groups["static"] = run.staticEnergy;
    return groups;
}

std::map<std::string, double>
energyBreakdownPct(const arch::RunCost &run)
{
    auto groups = energyBreakdown(run);
    double total = 0.0;
    for (const auto &[name, value] : groups)
        total += value;
    if (total > 0.0) {
        for (auto &[name, value] : groups)
            value = 100.0 * value / total;
    }
    return groups;
}

std::vector<std::pair<std::string, Joules>>
layerwiseMemoryEnergy(const arch::RunCost &run)
{
    std::vector<std::pair<std::string, Joules>> out;
    for (const auto &layer : run.layers) {
        if (layer.name.find(".bwd") != std::string::npos ||
            layer.name.find(".upd") != std::string::npos ||
            layer.name == "weight-reload") {
            continue;
        }
        switch (layer.kind) {
          case nn::LayerKind::Conv:
          case nn::LayerKind::Depthwise:
          case nn::LayerKind::Pointwise:
          case nn::LayerKind::FullyConnected:
            out.emplace_back(layer.name, layer.memoryEnergy());
            break;
          default:
            break;
        }
    }
    return out;
}

} // namespace sim
} // namespace inca
