/**
 * @file
 * End-to-end comparison and reporting helpers.
 *
 * The bench binaries regenerate the paper's tables and figures; the
 * helpers here run both engines on a suite of networks, compute the
 * gain metrics the paper plots (energy efficiency, speedup), and
 * group raw stats into the component classes the breakdown figures
 * use (DRAM / buffer / array / ADC / digital / static).
 */

#ifndef INCA_SIM_REPORT_HH
#define INCA_SIM_REPORT_HH

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "arch/cost.hh"
#include "baseline/engine.hh"
#include "common/trace.hh"
#include "inca/engine.hh"
#include "nn/network.hh"

namespace inca {
namespace sim {

/** Wall-clock seconds one named phase of a driver run took. */
struct PhaseTime
{
    std::string phase;
    double seconds = 0.0;
};

/**
 * RAII wall-clock timer: measures from construction to destruction
 * and records the result in the process-wide phase registry. Drivers
 * wrap each sweep in one of these so the thread-pool speedup is
 * visible in output. Thread-safe; phases appear in completion order.
 *
 * Built on top of a trace::Span: with INCA_TRACE set, every phase
 * also appears as a "phase <name>" span on the trace timeline.
 */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(std::string phase);
    ~ScopedPhaseTimer();

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    friend void flushLivePhaseTimers();

    std::string phase_;
    trace::Span span_;
    std::chrono::steady_clock::time_point start_;
    bool flushed_ = false; ///< already recorded by an early flush
};

/**
 * Record every still-open ScopedPhaseTimer into the phase registry
 * (and the trace, as a "phase <name>" span covering the elapsed part
 * of the scope) as of now. Registered with trace::atFlush() so a
 * driver that dies mid-phase via fatal() still reports the phases it
 * was in: fatal -> exit(1) -> INCA_TRACE atexit flush -> stop() ->
 * this. Idempotent per timer -- a timer flushed here records nothing
 * further when its scope later closes normally. Exposed for tests.
 */
void flushLivePhaseTimers();

/** Snapshot of all phases recorded so far. */
std::vector<PhaseTime> phaseTimes();

/** Drop all recorded phases (test isolation). */
void clearPhaseTimes();

/**
 * Print the recorded phases, the pool size, the evaluation-cache
 * statistics (hit rates, entries, estimated time saved), and the
 * process metrics registry (metrics::printText) to @p out. Drivers
 * that must keep stdout byte-identical between cached and uncached
 * runs pass stderr.
 */
void printPhaseTimes(std::FILE *out);

/** printPhaseTimes(stdout). */
void printPhaseTimes();

/** Print only the evaluation-cache statistics to @p out. */
void printCacheStats(std::FILE *out);

/** One network's INCA-vs-baseline result. */
struct Comparison
{
    std::string network;
    arch::RunCost inca;
    arch::RunCost baseline;
    /** Wall-clock seconds spent simulating each engine. */
    double incaSeconds = 0.0;
    double baselineSeconds = 0.0;

    /** Paper Fig. 11 metric: baseline energy / INCA energy. */
    double
    energyEfficiencyGain() const
    {
        return inca.energy() == 0.0
                   ? 0.0
                   : baseline.energy() / inca.energy();
    }

    /** Paper Fig. 14 metric: baseline latency / INCA latency. */
    double
    speedup() const
    {
        return inca.latency == 0.0 ? 0.0
                                   : baseline.latency / inca.latency;
    }
};

/** Run both engines on @p net for one phase. */
Comparison compare(const core::IncaEngine &incaEngine,
                   const baseline::BaselineEngine &baseEngine,
                   const nn::NetworkDesc &net, int batchSize,
                   arch::Phase phase);

/** Run a whole suite. */
std::vector<Comparison> compareSuite(
    const core::IncaEngine &incaEngine,
    const baseline::BaselineEngine &baseEngine,
    const std::vector<nn::NetworkDesc> &nets, int batchSize,
    arch::Phase phase);

/**
 * Group a run's energy into breakdown classes: "dram", "buffer",
 * "array", "adc", "dac", "digital", "static". Values in joules.
 */
std::map<std::string, double> energyBreakdown(const arch::RunCost &run);

/** Percentage view of energyBreakdown() (sums to 100). */
std::map<std::string, double> energyBreakdownPct(
    const arch::RunCost &run);

/** Per-layer DRAM + buffer energy of forward conv-like layers. */
std::vector<std::pair<std::string, Joules>> layerwiseMemoryEnergy(
    const arch::RunCost &run);

} // namespace sim
} // namespace inca

#endif // INCA_SIM_REPORT_HH
