/**
 * @file
 * Execution timelines and ASCII Gantt rendering.
 *
 * Engines report per-layer busy times; this module lays them out on a
 * time axis (the sequential dependency chain: INCA executes layers in
 * order, and a training run chains forward, backward and update
 * phases) and renders an ASCII Gantt chart so a user can see where a
 * batch's time goes -- the visual counterpart of Fig. 12's layerwise
 * energy series.
 */

#ifndef INCA_SIM_SCHEDULE_HH
#define INCA_SIM_SCHEDULE_HH

#include <string>
#include <vector>

#include "arch/cost.hh"

namespace inca {
namespace sim {

/** One scheduled interval. */
struct TimelineEntry
{
    std::string name;
    Seconds start = 0.0;
    Seconds end = 0.0;

    Seconds duration() const { return end - start; }
};

/** A laid-out execution timeline. */
struct Timeline
{
    std::vector<TimelineEntry> entries;

    /** End of the last entry. */
    Seconds makespan() const;

    /**
     * Render as an ASCII Gantt chart, @p width characters across,
     * skipping zero-duration entries.
     */
    std::string gantt(int width = 60) const;

    /** The @p n longest entries, longest first. */
    std::vector<TimelineEntry> longest(size_t n) const;
};

/**
 * Sequential layout of a run's layers: each layer starts when its
 * predecessor ends (the dependency-chain view of the run).
 */
Timeline timelineOf(const arch::RunCost &run);

} // namespace sim
} // namespace inca

#endif // INCA_SIM_SCHEDULE_HH
