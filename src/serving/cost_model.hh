/**
 * @file
 * Per-batch latency/energy cost model backing the serving simulator.
 *
 * A "server" is a group of one or more chips running one model
 * replica. The cost of dispatching a batch of a given size onto a
 * server comes from lowering the network to the shared IR and
 * executing it on the event backend -- the same machinery the
 * timeline driver uses -- and is memoized in a process-wide EvalCache
 * keyed by (engine config, network, batch, shard, link), so a
 * simulation touching thousands of batches pays for one event
 * execution per distinct batch size.
 *
 * Sharding maps a group of chips onto one replica:
 *  - replica: one chip per server; batch latency is the event-backend
 *    makespan, and the server admits the next batch when it finishes.
 *  - pipeline (layer-pipeline): layers are partitioned into
 *    contiguous, latency-balanced stages, one chip each. A batch
 *    traverses every stage plus an inter-stage activation transfer
 *    over the chip-to-chip link; the server re-admits a batch every
 *    initiation interval (the slowest stage), so throughput scales
 *    while single-batch latency does not.
 *  - tensor: every layer is split across the chips. Modeled by
 *    re-executing the event schedule with the on-chip compute units
 *    (array, ADC, digital, buffer) scaled by 1/chips -- DRAM stays
 *    unscaled (weights and inputs are broadcast) -- plus a per-layer
 *    all-reduce of the output activations over the link.
 *
 * Energy: a BatchCost carries the dynamic energy of the work plus the
 * link energy of the shard's transfers. Static (idle) energy is
 * deliberately NOT charged per batch: chips leak for the whole
 * simulated wall time whether busy or not, so the simulator charges
 * idlePowerPerServer() x servers x makespan once at report time.
 */

#ifndef INCA_SERVING_COST_MODEL_HH
#define INCA_SERVING_COST_MODEL_HH

#include <cstdint>
#include <string>

#include "arch/config.hh"
#include "common/units.hh"
#include "nn/network.hh"

namespace inca {
class CacheKey;
namespace serving {

/** How a server group's chips share one model replica. */
enum class ShardKind
{
    Replica,  ///< one chip per server
    Pipeline, ///< contiguous layer stages, one chip each
    Tensor,   ///< every layer split across the chips
};

/** "replica" / "pipeline" / "tensor". */
const char *shardKindName(ShardKind kind);

/** Parse a shard-kind name ("layer-pipeline" aliases "pipeline"). */
ShardKind shardKindByName(const std::string &name);

/** Chip-to-chip interconnect between the chips of one server. */
struct LinkSpec
{
    double bandwidthBytesPerS = 64e9; ///< per-direction bandwidth
    Seconds latencyS = 1e-6;          ///< per-hop message latency
    double energyPerByteJ = 10e-12;   ///< transfer energy
};

/** One server's chip organization. */
struct ShardSpec
{
    ShardKind kind = ShardKind::Replica;
    int chips = 1; ///< chips per server (forced 1 for replica)
    LinkSpec link;
};

/** Append shard + link identity to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const ShardSpec &spec);

/** Cost of running one batch on one server group. */
struct BatchCost
{
    /** Dispatch-to-completion time of the batch on an empty server. */
    Seconds latencyS = 0.0;
    /**
     * Initiation interval: time until the server can admit the next
     * batch. Equals latencyS except for pipeline sharding, where the
     * slowest stage gates admission.
     */
    Seconds intervalS = 0.0;
    /** Dynamic compute energy + link transfer energy. */
    Joules energyJ = 0.0;
};

/**
 * Memoized (model, batch, shard) -> BatchCost oracle; see the file
 * comment. Pure: two instances with equal configs produce
 * bit-identical costs on any thread, cache on or off.
 */
class BatchCostModel
{
  public:
    BatchCostModel(const arch::IncaConfig &cfg, ShardSpec shard);
    BatchCostModel(const arch::BaselineConfig &cfg, ShardSpec shard);

    /** Cost of a @p batch -image batch of @p net (memoized). */
    BatchCost cost(const nn::NetworkDesc &net, int batch) const;

    /** Leakage of every chip in one server group. */
    Watts idlePowerPerServer() const { return chipIdleW_ * shard_.chips; }

    const ShardSpec &shard() const { return shard_; }

    /** "inca" or "ws". */
    const char *engineName() const { return inca_ ? "inca" : "ws"; }

    /** FNV-1a hash of the chip config's canonical key (provenance). */
    std::uint64_t configKeyHash() const { return configKeyHash_; }

  private:
    BatchCost compute(const nn::NetworkDesc &net, int batch) const;

    bool inca_ = true;
    arch::IncaConfig incaCfg_;
    arch::BaselineConfig wsCfg_;
    ShardSpec shard_;
    Watts chipIdleW_ = 0.0;
    std::uint64_t configKeyHash_ = 0;
};

} // namespace serving
} // namespace inca

#endif // INCA_SERVING_COST_MODEL_HH
