/**
 * @file
 * Serving-report emitters: human-readable text, strict JSON with the
 * standard run-provenance manifest, RFC-4180 CSVs, and the
 * metrics/trace bridges.
 *
 * Every emitter is a pure function of the report, and the report is a
 * pure function of the spec, so all of them inherit the simulator's
 * bit-identity contract: the text/JSON/CSV bytes match at any thread
 * count and cache setting. Numbers that feed machines are %.17g
 * (exact double round-trip); the text report uses fixed human
 * precision, which is equally deterministic.
 */

#ifndef INCA_SERVING_EXPORT_HH
#define INCA_SERVING_EXPORT_HH

#include <string>

#include "serving/simulator.hh"

namespace inca {
namespace serving {

/** Human-readable report (the serve driver's stdout). */
std::string reportText(const ServingReport &rep);

/** Strict JSON report with the provenance manifest. */
std::string reportJson(const ServingReport &rep);

/** Per-request table: one RFC-4180 row per completed request. */
std::string requestsCsv(const ServingReport &rep);

/** Queue-depth timeline: one row per depth change. */
std::string timelineCsv(const ServingReport &rep);

/**
 * Publish the report to the metrics registry (serving.* gauges) and
 * feed every request latency into the serving.latency_us histogram,
 * so sim::printPhaseTimes renders the same exact percentiles the
 * report prints.
 */
void publishMetrics(const ServingReport &rep);

/**
 * Replay the queue-depth timeline as a trace counter series at
 * simulated time (INCA_TRACE consumers). No-op when tracing is off.
 */
void emitTrace(const ServingReport &rep);

} // namespace serving
} // namespace inca

#endif // INCA_SERVING_EXPORT_HH
