/**
 * @file
 * Failure injection and client-robustness policy types for the
 * serving simulator.
 *
 * FailureSpec describes a seeded per-server failure process: times to
 * fail are exponential around an MTBF, repairs exponential around an
 * MTTR, and each event is either a fail-stop (the server goes down,
 * in-flight batches die) or a degradation (the server keeps serving,
 * slowed by a factor) with probability degradedFraction. Every draw
 * comes from a per-server SplitMix64 stream derived from the spec
 * seed, so adding a replica never perturbs the failure trace of an
 * existing one -- the property behind the availability-monotonicity
 * guarantee the tests pin.
 *
 * The health state machine a server walks:
 *
 *   Up ---fail(stop)---> Down ---repair---> Recovering ---> Up
 *   Up ---fail(slow)---> Degraded ---------recover--------> Up
 *
 * Up and Degraded servers accept batches (Degraded ones serve
 * slowdownFactor times slower); Down and Recovering ones do not.
 * Recovering models the weight-reload window after a repair.
 *
 * RetryPolicy is the client side: a bounded retry budget with
 * exponential backoff and deterministic jitter (one SplitMix64 draw
 * per (request, attempt), order-independent by construction).
 *
 * Aging couples failures to device wear: each completed repair scales
 * the next expected time-to-fail by the aging factor, so failure
 * rates rise over simulated lifetime. failureSpecFromEndurance()
 * derives the starting MTBF from an arch::EnduranceReport -- the
 * wear model that already knows IS rewrites its activation cells
 * every iteration while WS mostly rests.
 */

#ifndef INCA_SERVING_FAILURES_HH
#define INCA_SERVING_FAILURES_HH

#include <cstdint>
#include <string>

#include "arch/endurance.hh"
#include "common/units.hh"

namespace inca {
namespace serving {

/** Per-server failure process (disabled by default). */
struct FailureSpec
{
    bool enabled = false;
    Seconds mtbfS = 0.0; ///< mean time between failures, per server
    Seconds mttrS = 0.0; ///< mean time to repair (or to recover speed)
    /** Probability a failure is a slowdown instead of a fail-stop. */
    double degradedFraction = 0.0;
    /** Degraded-mode service-time multiplier (>= 1). */
    double slowdownFactor = 4.0;
    /** Post-repair weight-reload window (the Recovering state). */
    Seconds recoveryS = 0.0;
    /**
     * Wear acceleration: the k-th time-to-fail draw of a server is
     * scaled by aging^k, so repairs leave the array weaker. 1 = no
     * aging.
     */
    double aging = 1.0;
    std::uint64_t seed = 1;
    /** Kill in-flight requests on a fail-stop instead of re-enqueuing. */
    bool dropInFlight = false;
};

/** Client-side bounded retry with exponential backoff + jitter. */
struct RetryPolicy
{
    int budget = 0;             ///< max retries per request (0: none)
    Seconds backoffBaseS = 1e-3; ///< first backoff; doubles per retry
    double jitter = 0.5;        ///< uniform jitter fraction in [0, 1]
};

/** Server health states (see the file comment's state machine). */
enum class Health
{
    Up,
    Degraded,
    Down,
    Recovering,
};

/** "up", "degraded", "down", "recovering". */
const char *healthName(Health h);

/** Terminal outcome of one request. */
enum class RequestOutcome
{
    Ok,      ///< completed (within the deadline, when one is set)
    Shed,    ///< rejected by admission control, retries exhausted
    Timeout, ///< missed its deadline (queued, backed off, or served late)
    Failed,  ///< died with its server, retries exhausted
};

/** "ok", "shed", "timeout", "failed". */
const char *requestOutcomeName(RequestOutcome o);

/**
 * Parse a --failures value: "none" disables injection; otherwise
 * "mtbf:mttr[:degraded-frac[:slowdown]]" with duration spellings
 * ("200ms:50ms", "2s:100ms:0.3:8"). Fatal on malformed input (user
 * error, not a simulator bug).
 */
FailureSpec parseFailureSpec(const char *flag, const char *text);

/**
 * Parse a --retry value: "none" disables retries; otherwise
 * "budget:backoff[:jitter]" ("3:1ms", "5:500us:0.25"). Fatal on
 * malformed input.
 */
RetryPolicy parseRetrySpec(const char *flag, const char *text);

/**
 * Derive a failure process from device wear: the starting MTBF is the
 * endurance-rated lifetime (iterationsToWearOut at @p iterationsPerS
 * sustained training iterations per second) and aging defaults to
 * 0.9 -- a first-order model of each repair cycle restarting on
 * already-cycled cells. mttr/degraded/slowdown keep their defaults
 * and can be adjusted afterwards.
 */
FailureSpec failureSpecFromEndurance(const arch::EnduranceReport &er,
                                     double iterationsPerS,
                                     Seconds mttrS,
                                     std::uint64_t seed = 1);

} // namespace serving
} // namespace inca

#endif // INCA_SERVING_FAILURES_HH
