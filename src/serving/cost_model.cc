#include "serving/cost_model.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "arch/power.hh"
#include "common/cache.hh"
#include "common/logging.hh"
#include "event/analysis.hh"
#include "event/event.hh"
#include "ir/lower.hh"

namespace inca {
namespace serving {

namespace {

EvalCache<BatchCost> &
batchCostCache()
{
    static EvalCache<BatchCost> *c =
        new EvalCache<BatchCost>("serving.batch");
    return *c;
}

/** Activation bytes a batch carries out of @p layer. */
double
activationBytes(const nn::LayerDesc &layer, int batch,
                int activationBits)
{
    return double(layer.outputCount()) * double(batch) *
           double(activationBits) / 8.0;
}

/** name -> layer lookup for mapping RunCost rows back to shapes. */
std::unordered_map<std::string, const nn::LayerDesc *>
layerIndex(const nn::NetworkDesc &net)
{
    std::unordered_map<std::string, const nn::LayerDesc *> by;
    for (const auto &layer : net.layers)
        by.emplace(layer.name, &layer);
    return by;
}

/**
 * Partition the per-layer latencies into @p stages contiguous groups
 * with a greedy balanced-prefix rule: close a stage once its running
 * sum reaches the ideal boundary. Returns the index of each stage's
 * last layer.
 */
std::vector<std::size_t>
stageCuts(const std::vector<arch::LayerCost> &layers, int stages)
{
    double total = 0.0;
    for (const auto &l : layers)
        total += l.latency;
    std::vector<std::size_t> cuts;
    double prefix = 0.0;
    int stage = 1;
    for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
        prefix += layers[i].latency;
        const double boundary =
            total * double(stage) / double(stages);
        // Keep enough layers for the remaining stages.
        const std::size_t remainingLayers = layers.size() - 1 - i;
        const std::size_t remainingStages =
            std::size_t(stages - stage);
        if ((prefix >= boundary && stage < stages) ||
            remainingLayers == remainingStages) {
            cuts.push_back(i);
            ++stage;
            if (stage == stages)
                break;
        }
    }
    cuts.push_back(layers.size() - 1);
    return cuts;
}

} // namespace

const char *
shardKindName(ShardKind kind)
{
    switch (kind) {
      case ShardKind::Replica:
        return "replica";
      case ShardKind::Pipeline:
        return "pipeline";
      case ShardKind::Tensor:
        return "tensor";
    }
    panic("unreachable shard kind %d", int(kind));
}

ShardKind
shardKindByName(const std::string &name)
{
    if (name == "layer-pipeline")
        return ShardKind::Pipeline;
    for (const ShardKind k :
         {ShardKind::Replica, ShardKind::Pipeline,
          ShardKind::Tensor}) {
        if (name == shardKindName(k))
            return k;
    }
    fatal("unknown shard kind '%s' (expected replica, pipeline, or "
          "tensor)",
          name.c_str());
}

void
appendKey(CacheKey &key, const ShardSpec &spec)
{
    key.add("shard");
    key.add(int(spec.kind));
    key.add(spec.chips);
    key.add(spec.link.bandwidthBytesPerS);
    key.add(spec.link.latencyS);
    key.add(spec.link.energyPerByteJ);
}

BatchCostModel::BatchCostModel(const arch::IncaConfig &cfg,
                               ShardSpec shard)
    : inca_(true), incaCfg_(cfg), shard_(shard)
{
    if (shard_.kind == ShardKind::Replica)
        shard_.chips = 1;
    inca_assert(shard_.chips >= 1, "shard needs at least one chip");
    chipIdleW_ = arch::incaIdlePower(incaCfg_);
    CacheKey key;
    arch::appendKey(key, incaCfg_);
    configKeyHash_ = key.hash();
}

BatchCostModel::BatchCostModel(const arch::BaselineConfig &cfg,
                               ShardSpec shard)
    : inca_(false), wsCfg_(cfg), shard_(shard)
{
    if (shard_.kind == ShardKind::Replica)
        shard_.chips = 1;
    inca_assert(shard_.chips >= 1, "shard needs at least one chip");
    chipIdleW_ = arch::baselineIdlePower(wsCfg_);
    CacheKey key;
    arch::appendKey(key, wsCfg_);
    configKeyHash_ = key.hash();
}

BatchCost
BatchCostModel::cost(const nn::NetworkDesc &net, int batch) const
{
    inca_assert(batch > 0, "batch %d must be positive", batch);
    CacheKey key;
    key.add("serving.batch");
    key.add(inca_);
    if (inca_)
        arch::appendKey(key, incaCfg_);
    else
        arch::appendKey(key, wsCfg_);
    nn::appendKey(key, net);
    key.add(batch);
    appendKey(key, shard_);
    return batchCostCache().getOrCompute(
        key, [&] { return compute(net, batch); });
}

BatchCost
BatchCostModel::compute(const nn::NetworkDesc &net, int batch) const
{
    const ir::LowerOptions opts{/*overlap=*/true};
    const ir::Program program =
        inca_ ? ir::lowerInca(incaCfg_, net, arch::Phase::Inference,
                              batch, opts)
              : ir::lowerWs(wsCfg_, net, arch::Phase::Inference,
                            batch, opts);
    const int activationBits =
        inca_ ? incaCfg_.activationBits : wsCfg_.activationBits;
    const int chips = shard_.chips;
    const LinkSpec &link = shard_.link;

    BatchCost out;
    if (shard_.kind == ShardKind::Tensor && chips > 1) {
        // Shrink the on-chip compute units by the split; DRAM stays
        // whole (weights and inputs are broadcast to every chip).
        ir::Program scaled = event::scaleUnit(
            program, ir::Unit::Array, 1.0 / double(chips));
        scaled = event::scaleUnit(scaled, ir::Unit::Adc,
                                  1.0 / double(chips));
        scaled = event::scaleUnit(scaled, ir::Unit::Digital,
                                  1.0 / double(chips));
        scaled = event::scaleUnit(scaled, ir::Unit::Buffer,
                                  1.0 / double(chips));
        const event::TimedRun timed = event::execute(scaled);
        // Ring all-reduce of every conv-like layer's output: each
        // chip moves 2(S-1)/S of the tensor, in ceil(log2 S) latency
        // hops.
        const double moved = 2.0 * double(chips - 1) / double(chips);
        const double hops =
            std::ceil(std::log2(double(chips)));
        Seconds linkTime = 0.0;
        double linkBytes = 0.0;
        for (const auto &layer : net.layers) {
            if (!layer.isConvLike())
                continue;
            const double bytes =
                activationBytes(layer, batch, activationBits);
            linkBytes += bytes * moved;
            linkTime += bytes * moved / link.bandwidthBytesPerS +
                        link.latencyS * hops;
        }
        out.latencyS = timed.run.latency + linkTime;
        out.intervalS = out.latencyS;
        out.energyJ = timed.run.sum("energy") +
                      linkBytes * link.energyPerByteJ;
    } else if (shard_.kind == ShardKind::Pipeline && chips > 1) {
        // Stage the layers; a batch flows through every stage once,
        // and the slowest stage gates the next batch's admission.
        const arch::RunCost serial = ir::analyticWalk(program);
        inca_assert(!serial.layers.empty(),
                    "pipeline sharding needs at least one layer");
        const int stages =
            std::min<int>(chips, int(serial.layers.size()));
        const auto cuts = stageCuts(serial.layers, stages);
        const auto byName = layerIndex(net);
        Seconds latency = 0.0;
        Seconds slowest = 0.0;
        double linkBytes = 0.0;
        std::size_t first = 0;
        for (std::size_t s = 0; s < cuts.size(); ++s) {
            Seconds stageTime = 0.0;
            for (std::size_t i = first; i <= cuts[s]; ++i)
                stageTime += serial.layers[i].latency;
            Seconds cutTime = 0.0;
            if (s + 1 < cuts.size()) {
                const auto it =
                    byName.find(serial.layers[cuts[s]].name);
                const double bytes =
                    it == byName.end()
                        ? 0.0
                        : activationBytes(*it->second, batch,
                                          activationBits);
                linkBytes += bytes;
                cutTime = bytes / link.bandwidthBytesPerS +
                          link.latencyS;
            }
            latency += stageTime + cutTime;
            slowest = std::max(slowest, stageTime + cutTime);
            first = cuts[s] + 1;
        }
        out.latencyS = latency;
        out.intervalS = slowest;
        out.energyJ = serial.sum("energy") +
                      linkBytes * link.energyPerByteJ;
    } else {
        const event::TimedRun timed = event::execute(program);
        out.latencyS = timed.run.latency;
        out.intervalS = out.latencyS;
        out.energyJ = timed.run.sum("energy");
    }
    inca_assert(out.latencyS > 0.0 && out.intervalS > 0.0,
                "batch cost must be positive");
    return out;
}

} // namespace serving
} // namespace inca
