#include "serving/arrivals.hh"

#include <cmath>

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace inca {
namespace serving {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Exponential variate with mean 1/rate from one uniform draw. */
double
exponential(SplitMix64 &rng, double rate)
{
    // 1 - uniform() is in (0, 1], so the log is always finite.
    return -std::log(1.0 - rng.uniform()) / rate;
}

std::vector<Seconds>
poissonTrace(SplitMix64 &rng, double rate, Seconds duration)
{
    std::vector<Seconds> out;
    out.reserve(std::size_t(rate * duration * 1.1) + 16);
    Seconds t = exponential(rng, rate);
    while (t < duration) {
        out.push_back(t);
        t += exponential(rng, rate);
    }
    return out;
}

std::vector<Seconds>
burstyTrace(const ArrivalSpec &spec, SplitMix64 &rng,
            Seconds duration)
{
    inca_assert(spec.burstFactor >= 1.0,
                "burst factor %f must be >= 1", spec.burstFactor);
    inca_assert(spec.meanOnS > 0.0 && spec.meanOffS > 0.0,
                "bursty sojourn means must be positive");
    // Pick the per-state rates so the time average equals ratePerS:
    //   pOn * rateOn + (1 - pOn) * rateOff = rate.
    // A factor saturating the on-fraction clamps rateOff at zero (the
    // trace then averages slightly below the nominal rate; the report
    // always prints the realized rate, never the nominal one).
    const double pOn =
        spec.meanOnS / (spec.meanOnS + spec.meanOffS);
    const double rateOn = spec.burstFactor * spec.ratePerS;
    const double rateOff = std::max(
        0.0, (spec.ratePerS - pOn * rateOn) / (1.0 - pOn));
    std::vector<Seconds> out;
    out.reserve(std::size_t(spec.ratePerS * duration * 1.1) + 16);
    Seconds t = 0.0;
    bool on = false; // start in the quiet state
    while (t < duration) {
        const double mean = on ? spec.meanOnS : spec.meanOffS;
        const double rate = on ? rateOn : rateOff;
        const Seconds sojournEnd =
            t + exponential(rng, 1.0 / mean);
        if (rate > 0.0) {
            Seconds a = t + exponential(rng, rate);
            while (a < sojournEnd && a < duration) {
                out.push_back(a);
                a += exponential(rng, rate);
            }
        }
        t = sojournEnd;
        on = !on;
    }
    return out;
}

std::vector<Seconds>
diurnalTrace(const ArrivalSpec &spec, SplitMix64 &rng,
             Seconds duration)
{
    inca_assert(spec.diurnalDepth >= 0.0 && spec.diurnalDepth < 1.0,
                "diurnal depth %f outside [0, 1)", spec.diurnalDepth);
    inca_assert(spec.diurnalPeriodS > 0.0,
                "diurnal period must be positive");
    // Thinning: draw candidates at the envelope rate and accept each
    // with probability rate(t) / rateMax. The sin modulation averages
    // to zero over whole periods, so the realized mean tracks
    // ratePerS.
    const double rateMax = spec.ratePerS * (1.0 + spec.diurnalDepth);
    std::vector<Seconds> out;
    out.reserve(std::size_t(spec.ratePerS * duration * 1.1) + 16);
    Seconds t = exponential(rng, rateMax);
    while (t < duration) {
        const double rate =
            spec.ratePerS *
            (1.0 + spec.diurnalDepth *
                       std::sin(2.0 * kPi * t /
                                spec.diurnalPeriodS));
        if (rng.uniform() * rateMax < rate)
            out.push_back(t);
        t += exponential(rng, rateMax);
    }
    return out;
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Diurnal:
        return "diurnal";
    }
    panic("unreachable arrival kind %d", int(kind));
}

ArrivalKind
arrivalKindByName(const std::string &name)
{
    for (const ArrivalKind k :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        if (name == arrivalKindName(k))
            return k;
    }
    fatal("unknown arrival process '%s' (expected poisson, bursty, "
          "or diurnal)",
          name.c_str());
}

void
appendKey(CacheKey &key, const ArrivalSpec &spec)
{
    key.add("arrivals");
    key.add(int(spec.kind));
    key.add(spec.ratePerS);
    key.add(spec.seed);
    key.add(spec.burstFactor);
    key.add(spec.meanOnS);
    key.add(spec.meanOffS);
    key.add(spec.diurnalPeriodS);
    key.add(spec.diurnalDepth);
}

std::vector<Seconds>
generateArrivals(const ArrivalSpec &spec, Seconds duration)
{
    inca_assert(spec.ratePerS > 0.0, "arrival rate %f must be > 0",
                spec.ratePerS);
    inca_assert(duration > 0.0, "duration %f must be > 0", duration);
    SplitMix64 rng(spec.seed);
    switch (spec.kind) {
      case ArrivalKind::Poisson:
        return poissonTrace(rng, spec.ratePerS, duration);
      case ArrivalKind::Bursty:
        return burstyTrace(spec, rng, duration);
      case ArrivalKind::Diurnal:
        return diurnalTrace(spec, rng, duration);
    }
    panic("unreachable arrival kind %d", int(spec.kind));
}

} // namespace serving
} // namespace inca
