#include "serving/simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace serving {

namespace {

/** Heap event. Kind breaks timestamp ties; seq breaks kind ties. */
struct Ev
{
    Seconds t = 0.0;
    int kind = 0; ///< 0 server-ready, 1 arrival, 2 timeout
    std::uint64_t seq = 0;
    std::uint64_t payload = 0;
};

struct EvLater
{
    bool operator()(const Ev &a, const Ev &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        if (a.kind != b.kind)
            return a.kind > b.kind;
        return a.seq > b.seq;
    }
};

struct Server
{
    Seconds readyAtS = 0.0;        ///< next admission slot
    Seconds lastCompletionS = 0.0; ///< FIFO monotonicity clamp
    ServerStats stats;
};

void
validateSpec(const ServingSpec &spec)
{
    inca_assert(spec.durationS > 0.0, "duration must be positive");
    inca_assert(spec.replicas >= 1, "need at least one replica");
    inca_assert(spec.batch.maxBatch >= 1,
                "batch cap must be at least 1");
    inca_assert(std::isfinite(spec.batch.timeoutS) &&
                    spec.batch.timeoutS >= 0.0,
                "batch timeout must be finite and non-negative");
    inca_assert(!spec.streams.empty(),
                "the workload needs at least one stream");
    for (const StreamSpec &s : spec.streams)
        inca_assert(s.weight > 0.0,
                    "stream '%s' needs a positive weight",
                    s.network.c_str());
}

} // namespace

double
exactPercentile(std::vector<double> samples, double q)
{
    inca_assert(q > 0.0 && q <= 100.0,
                "percentile %f outside (0, 100]", q);
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t rank =
        std::size_t(std::ceil(q / 100.0 * double(samples.size())));
    if (rank < 1)
        rank = 1;
    if (rank > samples.size())
        rank = samples.size();
    return samples[rank - 1];
}

ServingReport
simulate(const ServingSpec &spec)
{
    validateSpec(spec);
    ServingReport rep;
    rep.spec = spec;

    // ---- Arrival trace + stream assignment (both seeded). --------
    const std::vector<Seconds> arrivals =
        generateArrivals(spec.arrivals, spec.durationS);
    rep.offered = arrivals.size();
    rep.offeredRatePerS = double(arrivals.size()) / spec.durationS;

    double totalWeight = 0.0;
    for (const StreamSpec &s : spec.streams)
        totalWeight += s.weight;
    SplitMix64 assign(spec.arrivals.seed ^ 0x53545245414d53ULL);
    rep.requests.resize(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        RequestRecord &r = rep.requests[i];
        r.id = i;
        r.arrivalS = arrivals[i];
        double u = assign.uniform() * totalWeight;
        int stream = 0;
        for (std::size_t s = 0; s < spec.streams.size(); ++s) {
            u -= spec.streams[s].weight;
            if (u < 0.0) {
                stream = int(s);
                break;
            }
        }
        r.stream = stream;
    }

    // ---- Cost table: the only parallel phase. --------------------
    // One slot per (stream, batch size); each slot is a pure
    // cost-model call, so the fan-out is scheduling-independent and
    // the serial loop below never computes a cost itself.
    const BatchCostModel model =
        spec.incaEngine ? BatchCostModel(spec.inca, spec.shard)
                        : BatchCostModel(spec.ws, spec.shard);
    std::vector<nn::NetworkDesc> nets;
    nets.reserve(spec.streams.size());
    for (const StreamSpec &s : spec.streams)
        nets.push_back(nn::byName(s.network));
    const int maxBatch = spec.batch.maxBatch;
    std::vector<BatchCost> table(spec.streams.size() *
                                 std::size_t(maxBatch));
    parallel_for_each(
        std::int64_t(table.size()), 1, [&](std::int64_t i) {
            const std::size_t stream =
                std::size_t(i) / std::size_t(maxBatch);
            const int batch = int(std::size_t(i) %
                                  std::size_t(maxBatch)) +
                              1;
            table[std::size_t(i)] = model.cost(nets[stream], batch);
        });
    const auto costOf = [&](int stream, int batch) -> const BatchCost & {
        return table[std::size_t(stream) * std::size_t(maxBatch) +
                     std::size_t(batch - 1)];
    };

    // ---- Serial virtual-time event loop. -------------------------
    std::priority_queue<Ev, std::vector<Ev>, EvLater> events;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        events.push(Ev{arrivals[i], /*arrival*/ 1, seq++, i});
        // Every request gets a timeout tick: the head-age dispatch
        // condition below compares against the identical floating-
        // point sum, so the tick fires the moment the condition
        // becomes true -- and a drained trace still flushes.
        events.push(Ev{arrivals[i] + spec.batch.timeoutS,
                       /*timeout*/ 2, seq++, i});
    }

    std::vector<std::deque<std::uint64_t>> queues(
        spec.streams.size());
    std::vector<Server> servers(std::size_t(spec.replicas));

    std::uint64_t waiting = 0;
    Seconds lastTimelineT = 0.0;
    double depthIntegral = 0.0;
    // Integrate the piecewise-constant depth up to @p t BEFORE a
    // change, then record the new level after it.
    const auto advanceDepth = [&](Seconds t) {
        depthIntegral += double(waiting) * (t - lastTimelineT);
        lastTimelineT = t;
    };
    const auto noteDepth = [&](Seconds t) {
        rep.queueTimeline.push_back({t, waiting});
        rep.maxQueueDepth = std::max(rep.maxQueueDepth, waiting);
    };

    double batchSizeSum = 0.0;
    const auto dispatchable = [&](std::size_t s, Seconds now) {
        const auto &q = queues[s];
        if (q.empty())
            return false;
        if (q.size() >= std::size_t(maxBatch))
            return true;
        return now >= rep.requests[q.front()].arrivalS +
                          spec.batch.timeoutS;
    };
    const auto tryDispatch = [&](Seconds now) {
        for (;;) {
            // Lowest-index idle server.
            int srv = -1;
            for (std::size_t i = 0; i < servers.size(); ++i) {
                if (servers[i].readyAtS <= now) {
                    srv = int(i);
                    break;
                }
            }
            if (srv < 0)
                return;
            // Dispatchable stream: lowest priority number, then
            // oldest head request, then stream index.
            int best = -1;
            for (std::size_t s = 0; s < queues.size(); ++s) {
                if (!dispatchable(s, now))
                    continue;
                if (best < 0) {
                    best = int(s);
                    continue;
                }
                const StreamSpec &a = spec.streams[s];
                const StreamSpec &b =
                    spec.streams[std::size_t(best)];
                const Seconds headA =
                    rep.requests[queues[s].front()].arrivalS;
                const Seconds headB =
                    rep.requests[queues[std::size_t(best)].front()]
                        .arrivalS;
                if (a.priority < b.priority ||
                    (a.priority == b.priority && headA < headB))
                    best = int(s);
            }
            if (best < 0)
                return;
            auto &q = queues[std::size_t(best)];
            const int batch =
                int(std::min<std::size_t>(q.size(),
                                          std::size_t(maxBatch)));
            const BatchCost &cost = costOf(best, batch);
            Server &server = servers[std::size_t(srv)];
            // FIFO clamp: a pipeline cannot let a later (smaller)
            // batch finish before an earlier one.
            const Seconds completion = std::max(
                now + cost.latencyS, server.lastCompletionS);
            server.lastCompletionS = completion;
            server.readyAtS = now + cost.intervalS;
            server.stats.busyS += cost.intervalS;
            server.stats.batches += 1;
            server.stats.requests += std::uint64_t(batch);
            events.push(Ev{server.readyAtS, /*server-ready*/ 0,
                           seq++, std::uint64_t(srv)});
            for (int i = 0; i < batch; ++i) {
                RequestRecord &r = rep.requests[q.front()];
                q.pop_front();
                r.server = srv;
                r.batchSize = batch;
                r.dispatchS = now;
                r.completionS = completion;
            }
            advanceDepth(now);
            waiting -= std::uint64_t(batch);
            noteDepth(now);
            rep.dynamicEnergyJ += cost.energyJ;
            rep.batches += 1;
            batchSizeSum += double(batch);
            rep.makespanS = std::max(rep.makespanS, completion);
        }
    };

    while (!events.empty()) {
        const Ev ev = events.top();
        events.pop();
        if (ev.kind == 1) { // arrival
            queues[std::size_t(
                       rep.requests[ev.payload].stream)]
                .push_back(ev.payload);
            advanceDepth(ev.t);
            ++waiting;
            noteDepth(ev.t);
        }
        tryDispatch(ev.t);
    }
    for (const auto &q : queues)
        inca_assert(q.empty(), "simulation ended with queued work");

    // ---- Roll-ups. -----------------------------------------------
    rep.completed = rep.offered;
    std::vector<double> latencies;
    latencies.reserve(rep.requests.size());
    double latencySum = 0.0, waitSum = 0.0;
    for (const RequestRecord &r : rep.requests) {
        const double l = r.latencyS();
        latencies.push_back(l);
        latencySum += l;
        waitSum += r.waitS();
        rep.maxLatencyS = std::max(rep.maxLatencyS, l);
        if (spec.sloS > 0.0 && l <= spec.sloS)
            ++rep.withinSlo;
    }
    if (!latencies.empty()) {
        rep.meanLatencyS = latencySum / double(latencies.size());
        rep.meanWaitS = waitSum / double(latencies.size());
        rep.p50S = exactPercentile(latencies, 50.0);
        rep.p95S = exactPercentile(latencies, 95.0);
        rep.p99S = exactPercentile(latencies, 99.0);
    }
    if (rep.makespanS > 0.0) {
        rep.throughputRps =
            double(rep.completed) / rep.makespanS;
        rep.goodputRps =
            spec.sloS > 0.0
                ? double(rep.withinSlo) / rep.makespanS
                : rep.throughputRps;
        rep.meanQueueDepth = depthIntegral / rep.makespanS;
    }
    rep.meanBatchSize =
        rep.batches ? batchSizeSum / double(rep.batches) : 0.0;
    rep.servers.reserve(servers.size());
    double busySum = 0.0;
    for (const Server &s : servers) {
        ServerStats stats = s.stats;
        stats.utilization = rep.makespanS > 0.0
                                ? stats.busyS / rep.makespanS
                                : 0.0;
        busySum += stats.utilization;
        rep.servers.push_back(stats);
    }
    rep.utilization =
        servers.empty() ? 0.0 : busySum / double(servers.size());
    rep.staticEnergyJ = model.idlePowerPerServer() *
                        double(spec.replicas) * rep.makespanS;
    rep.energyJ = rep.dynamicEnergyJ + rep.staticEnergyJ;
    rep.energyPerRequestJ =
        rep.completed ? rep.energyJ / double(rep.completed) : 0.0;
    return rep;
}

} // namespace serving
} // namespace inca
