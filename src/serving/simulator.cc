#include "serving/simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace serving {

namespace {

/**
 * Heap event. Kind breaks timestamp ties; seq breaks kind ties.
 * Kinds 0-2 are the original (chaos-off) machinery; 3+ only enter
 * the heap when a chaos feature needs them, except completions
 * (kind 3), which are always scheduled but are pure finalizers --
 * they change no scheduler-visible state, so their presence keeps
 * the chaos-off event stream's observable behavior identical.
 */
struct Ev
{
    Seconds t = 0.0;
    int kind = 0; ///< 0 server-ready, 1 arrival, 2 timeout,
                  ///< 3 completion, 4 fail, 5 repair, 6 up,
                  ///< 7 deadline, 8 retry
    std::uint64_t seq = 0;
    std::uint64_t payload = 0;
};

struct EvLater
{
    bool operator()(const Ev &a, const Ev &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        if (a.kind != b.kind)
            return a.kind > b.kind;
        return a.seq > b.seq;
    }
};

constexpr int kEvServerReady = 0;
constexpr int kEvArrival = 1;
constexpr int kEvTimeout = 2;
constexpr int kEvCompletion = 3;
constexpr int kEvFail = 4;
constexpr int kEvRepair = 5;
constexpr int kEvUp = 6;
constexpr int kEvDeadline = 7;
constexpr int kEvRetry = 8;

struct Server
{
    Seconds readyAtS = 0.0;        ///< next admission slot
    Seconds lastCompletionS = 0.0; ///< FIFO monotonicity clamp
    ServerStats stats;

    // Chaos state.
    Health health = Health::Up;
    SplitMix64 rng{0};          ///< private failure stream
    std::uint64_t failCount = 0; ///< aging exponent
    std::vector<std::uint64_t> inflight; ///< live batch ids, dispatch order
    /** (time, accepting-work) transitions; implicit (0, true) start. */
    std::vector<std::pair<Seconds, bool>> healthLog;
};

/** One dispatched service attempt of a batch on one server. */
struct Leg
{
    int server = -1;
    Seconds completionS = 0.0;
    bool dead = false; ///< killed by a fail-stop before completing
};

/** A dispatched batch; hedged batches carry two legs. */
struct Batch
{
    int stream = 0;
    std::vector<std::uint64_t> reqs;
    std::vector<Leg> legs;
    bool done = false; ///< first surviving leg finalized it
};

/** Where a request currently is (internal to the event loop). */
enum class RState
{
    Backoff,  ///< client will (re)send; also pre-arrival
    Queued,   ///< in its stream queue
    InFlight, ///< in a live batch
    Done,     ///< terminal (outcome recorded exactly once)
};

/** Exponential variate with mean 1/rate from one uniform draw. */
double
exponential(SplitMix64 &rng, double rate)
{
    return -std::log(1.0 - rng.uniform()) / rate;
}

void
validateSpec(const ServingSpec &spec)
{
    inca_assert(spec.durationS > 0.0, "duration must be positive");
    inca_assert(spec.replicas >= 1, "need at least one replica");
    inca_assert(spec.batch.maxBatch >= 1,
                "batch cap must be at least 1");
    inca_assert(std::isfinite(spec.batch.timeoutS) &&
                    spec.batch.timeoutS >= 0.0,
                "batch timeout must be finite and non-negative");
    inca_assert(!spec.streams.empty(),
                "the workload needs at least one stream");
    for (const StreamSpec &s : spec.streams)
        inca_assert(s.weight > 0.0,
                    "stream '%s' needs a positive weight",
                    s.network.c_str());
    if (spec.failures.enabled) {
        inca_assert(spec.failures.mtbfS > 0.0,
                    "failure MTBF must be positive");
        inca_assert(spec.failures.mttrS >= 0.0,
                    "failure MTTR must be non-negative");
        inca_assert(spec.failures.degradedFraction >= 0.0 &&
                        spec.failures.degradedFraction <= 1.0,
                    "degraded fraction %f outside [0, 1]",
                    spec.failures.degradedFraction);
        inca_assert(spec.failures.slowdownFactor >= 1.0,
                    "slowdown factor %f must be >= 1",
                    spec.failures.slowdownFactor);
        inca_assert(spec.failures.recoveryS >= 0.0,
                    "recovery window must be non-negative");
        inca_assert(spec.failures.aging > 0.0 &&
                        spec.failures.aging <= 1.0,
                    "aging factor %f outside (0, 1]",
                    spec.failures.aging);
    }
    inca_assert(spec.retry.budget >= 0,
                "retry budget must be non-negative");
    if (spec.retry.budget > 0)
        inca_assert(spec.retry.backoffBaseS > 0.0,
                    "retry backoff base must be positive");
    inca_assert(spec.retry.jitter >= 0.0 && spec.retry.jitter <= 1.0,
                "retry jitter %f outside [0, 1]", spec.retry.jitter);
    inca_assert(spec.deadlineS >= 0.0,
                "deadline must be non-negative");
    inca_assert(spec.hedgeDelayS >= 0.0,
                "hedge delay must be non-negative");
}

} // namespace

bool
chaosEnabled(const ServingSpec &spec)
{
    return spec.failures.enabled || spec.retry.budget > 0 ||
           spec.deadlineS > 0.0 || spec.hedgeDelayS > 0.0 ||
           spec.queueCap > 0;
}

double
exactPercentile(std::vector<double> samples, double q)
{
    inca_assert(q > 0.0 && q <= 100.0,
                "percentile %f outside (0, 100]", q);
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    std::size_t rank =
        std::size_t(std::ceil(q / 100.0 * double(samples.size())));
    if (rank < 1)
        rank = 1;
    if (rank > samples.size())
        rank = samples.size();
    return samples[rank - 1];
}

ServingReport
simulate(const ServingSpec &spec)
{
    validateSpec(spec);
    ServingReport rep;
    rep.spec = spec;

    // ---- Arrival trace + stream assignment (both seeded). --------
    const std::vector<Seconds> arrivals =
        generateArrivals(spec.arrivals, spec.durationS);
    rep.offered = arrivals.size();
    rep.offeredRatePerS = double(arrivals.size()) / spec.durationS;

    double totalWeight = 0.0;
    for (const StreamSpec &s : spec.streams)
        totalWeight += s.weight;
    SplitMix64 assign(spec.arrivals.seed ^ 0x53545245414d53ULL);
    rep.requests.resize(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        RequestRecord &r = rep.requests[i];
        r.id = i;
        r.arrivalS = arrivals[i];
        double u = assign.uniform() * totalWeight;
        int stream = 0;
        for (std::size_t s = 0; s < spec.streams.size(); ++s) {
            u -= spec.streams[s].weight;
            if (u < 0.0) {
                stream = int(s);
                break;
            }
        }
        r.stream = stream;
    }

    // ---- Cost table: the only parallel phase. --------------------
    // One slot per (stream, batch size); each slot is a pure
    // cost-model call, so the fan-out is scheduling-independent and
    // the serial loop below never computes a cost itself.
    const BatchCostModel model =
        spec.incaEngine ? BatchCostModel(spec.inca, spec.shard)
                        : BatchCostModel(spec.ws, spec.shard);
    std::vector<nn::NetworkDesc> nets;
    nets.reserve(spec.streams.size());
    for (const StreamSpec &s : spec.streams)
        nets.push_back(nn::byName(s.network));
    const int maxBatch = spec.batch.maxBatch;
    std::vector<BatchCost> table(spec.streams.size() *
                                 std::size_t(maxBatch));
    parallel_for_each(
        std::int64_t(table.size()), 1, [&](std::int64_t i) {
            const std::size_t stream =
                std::size_t(i) / std::size_t(maxBatch);
            const int batch = int(std::size_t(i) %
                                  std::size_t(maxBatch)) +
                              1;
            table[std::size_t(i)] = model.cost(nets[stream], batch);
        });
    const auto costOf = [&](int stream, int batch) -> const BatchCost & {
        return table[std::size_t(stream) * std::size_t(maxBatch) +
                     std::size_t(batch - 1)];
    };

    // ---- Serial virtual-time event loop. -------------------------
    const bool failuresOn = spec.failures.enabled;
    std::priority_queue<Ev, std::vector<Ev>, EvLater> events;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        events.push(Ev{arrivals[i], kEvArrival, seq++, i});
        // Every request gets a timeout tick: the head-age dispatch
        // condition below compares against the identical floating-
        // point sum, so the tick fires the moment the condition
        // becomes true -- and a drained trace still flushes. The
        // head age counts from the original arrival even after a
        // failover or retry re-enqueue, so a revived request past
        // its tick is dispatchable at the next opportunity and no
        // per-episode tick is ever needed.
        events.push(Ev{arrivals[i] + spec.batch.timeoutS,
                       kEvTimeout, seq++, i});
    }
    if (spec.deadlineS > 0.0) {
        for (std::size_t i = 0; i < arrivals.size(); ++i)
            events.push(Ev{arrivals[i] + spec.deadlineS,
                           kEvDeadline, seq++, i});
    }

    std::vector<std::deque<std::uint64_t>> queues(
        spec.streams.size());
    std::vector<Server> servers(std::size_t(spec.replicas));
    rep.streamStats.resize(spec.streams.size());

    int minPriority = spec.streams[0].priority;
    for (const StreamSpec &s : spec.streams)
        minPriority = std::min(minPriority, s.priority);

    // Per-request loop state, parallel to rep.requests.
    std::vector<RState> state(rep.requests.size(), RState::Backoff);
    std::vector<Seconds> entryS(rep.requests.size(), 0.0);
    std::uint64_t unresolved = rep.requests.size();

    std::vector<Batch> batches;

    // Per-server failure streams: independent by construction, so a
    // replica's trace never depends on how many replicas exist --
    // adding one grows the union of up-time, which is what makes
    // availability monotone in the replica count.
    if (failuresOn) {
        for (std::size_t i = 0; i < servers.size(); ++i) {
            servers[i].rng = SplitMix64(
                spec.failures.seed ^
                (0x4641494c55524553ULL +
                 std::uint64_t(i) * 0x9e3779b97f4a7c15ULL));
            const Seconds ttf =
                exponential(servers[i].rng, 1.0 / spec.failures.mtbfS);
            events.push(Ev{ttf, kEvFail, seq++, i});
        }
    }

    std::uint64_t waiting = 0;
    Seconds lastTimelineT = 0.0;
    double depthIntegral = 0.0;
    // Integrate the piecewise-constant depth up to @p t BEFORE a
    // change, then record the new level after it.
    const auto advanceDepth = [&](Seconds t) {
        depthIntegral += double(waiting) * (t - lastTimelineT);
        lastTimelineT = t;
    };
    const auto noteDepth = [&](Seconds t) {
        rep.queueTimeline.push_back({t, waiting});
        rep.maxQueueDepth = std::max(rep.maxQueueDepth, waiting);
    };

    // The single terminal transition: records the outcome exactly
    // once and keeps every counter consistent by construction.
    const auto finish = [&](std::uint64_t id, RequestOutcome outcome) {
        inca_assert(state[id] != RState::Done,
                    "request %llu finished twice",
                    static_cast<unsigned long long>(id));
        state[id] = RState::Done;
        --unresolved;
        RequestRecord &r = rep.requests[id];
        r.outcome = outcome;
        StreamStats &ss = rep.streamStats[std::size_t(r.stream)];
        switch (outcome) {
          case RequestOutcome::Ok:
            break;
          case RequestOutcome::Shed:
            ++rep.shed;
            ++ss.shed;
            break;
          case RequestOutcome::Timeout:
            ++rep.timedOut;
            ++ss.timedOut;
            break;
          case RequestOutcome::Failed:
            ++rep.failed;
            ++ss.failed;
            break;
        }
    };

    // Client retry: one more attempt with exponential backoff and a
    // deterministic per-(request, attempt) jitter draw -- a pure
    // function of (seed, id, attempt), independent of event order.
    const auto retryOrFail = [&](std::uint64_t id, Seconds now,
                                 RequestOutcome cause) {
        RequestRecord &r = rep.requests[id];
        if (r.retries >= spec.retry.budget) {
            finish(id, cause);
            return;
        }
        ++r.retries;
        ++rep.retries;
        ++rep.streamStats[std::size_t(r.stream)].retries;
        SplitMix64 j(spec.arrivals.seed ^ 0x524554525953ULL ^
                     (id * 0x9e3779b97f4a7c15ULL +
                      std::uint64_t(r.retries)));
        const double backoff =
            spec.retry.backoffBaseS *
            double(std::uint64_t(1) << (r.retries - 1)) *
            (1.0 + spec.retry.jitter * j.uniform());
        state[id] = RState::Backoff;
        events.push(Ev{now + backoff, kEvRetry, seq++, id});
    };

    // Admission: bounded per-stream queues shed the arriving request;
    // under global overload only the highest-priority class gets in.
    // The cap-0 path is byte-identical to the original unbounded
    // admission.
    const auto admit = [&](std::uint64_t id, Seconds now) {
        RequestRecord &r = rep.requests[id];
        auto &q = queues[std::size_t(r.stream)];
        if (spec.queueCap > 0) {
            const bool full = q.size() >= std::size_t(spec.queueCap);
            const bool overload =
                waiting >= spec.queueCap * queues.size() &&
                spec.streams[std::size_t(r.stream)].priority >
                    minPriority;
            if (full || overload) {
                retryOrFail(id, now, RequestOutcome::Shed);
                return;
            }
        }
        state[id] = RState::Queued;
        entryS[id] = now;
        q.push_back(id);
        advanceDepth(now);
        ++waiting;
        noteDepth(now);
    };

    double batchSizeSum = 0.0;
    const auto accepts = [&](const Server &s) {
        return s.health == Health::Up ||
               s.health == Health::Degraded;
    };
    const auto dispatchable = [&](std::size_t s, Seconds now) {
        const auto &q = queues[s];
        if (q.empty())
            return false;
        if (q.size() >= std::size_t(maxBatch))
            return true;
        return now >= rep.requests[q.front()].arrivalS +
                          spec.batch.timeoutS;
    };
    // Dispatch one leg of @p reqs on @p srv; returns its completion.
    const auto dispatchLeg = [&](Batch &b, int srv, Seconds now) {
        Server &server = servers[std::size_t(srv)];
        const BatchCost &cost =
            costOf(b.stream, int(b.reqs.size()));
        Seconds latency = cost.latencyS;
        Seconds interval = cost.intervalS;
        if (server.health == Health::Degraded) {
            latency *= spec.failures.slowdownFactor;
            interval *= spec.failures.slowdownFactor;
        }
        // FIFO clamp: a pipeline cannot let a later (smaller)
        // batch finish before an earlier one.
        const Seconds completion =
            std::max(now + latency, server.lastCompletionS);
        server.lastCompletionS = completion;
        server.readyAtS = now + interval;
        server.stats.busyS += interval;
        server.stats.batches += 1;
        server.stats.requests += b.reqs.size();
        events.push(Ev{server.readyAtS, kEvServerReady, seq++,
                       std::uint64_t(srv)});
        rep.dynamicEnergyJ += cost.energyJ;
        return completion;
    };
    const auto tryDispatch = [&](Seconds now) {
        for (;;) {
            // Lowest-index idle server that accepts work.
            int srv = -1;
            for (std::size_t i = 0; i < servers.size(); ++i) {
                if (servers[i].readyAtS <= now &&
                    accepts(servers[i])) {
                    srv = int(i);
                    break;
                }
            }
            if (srv < 0)
                return;
            // Dispatchable stream: lowest priority number, then
            // oldest head request, then stream index.
            int best = -1;
            for (std::size_t s = 0; s < queues.size(); ++s) {
                if (!dispatchable(s, now))
                    continue;
                if (best < 0) {
                    best = int(s);
                    continue;
                }
                const StreamSpec &a = spec.streams[s];
                const StreamSpec &b =
                    spec.streams[std::size_t(best)];
                const Seconds headA =
                    rep.requests[queues[s].front()].arrivalS;
                const Seconds headB =
                    rep.requests[queues[std::size_t(best)].front()]
                        .arrivalS;
                if (a.priority < b.priority ||
                    (a.priority == b.priority && headA < headB))
                    best = int(s);
            }
            if (best < 0)
                return;
            auto &q = queues[std::size_t(best)];
            const int batch =
                int(std::min<std::size_t>(q.size(),
                                          std::size_t(maxBatch)));
            const std::uint64_t batchId = batches.size();
            // Hedge once the head has waited past the delay and a
            // second idle healthy server exists: the same batch runs
            // on both, the first surviving completion wins.
            const bool wantHedge =
                spec.hedgeDelayS > 0.0 &&
                now - entryS[q.front()] >= spec.hedgeDelayS;
            Batch b;
            b.stream = best;
            b.reqs.reserve(std::size_t(batch));
            for (int i = 0; i < batch; ++i) {
                const std::uint64_t id = q.front();
                q.pop_front();
                b.reqs.push_back(id);
                RequestRecord &r = rep.requests[id];
                r.server = srv;
                r.batchSize = batch;
                r.dispatchS = now;
                r.queuedS += now - entryS[id];
                state[id] = RState::InFlight;
            }
            batches.push_back(std::move(b));
            Batch &placed = batches.back();
            const Seconds completion =
                dispatchLeg(placed, srv, now);
            placed.legs.push_back(Leg{srv, completion, false});
            servers[std::size_t(srv)].inflight.push_back(batchId);
            events.push(Ev{completion, kEvCompletion, seq++,
                           batchId * 2});
            if (wantHedge) {
                int srv2 = -1;
                for (std::size_t i = 0; i < servers.size(); ++i) {
                    if (int(i) != srv &&
                        servers[i].readyAtS <= now &&
                        accepts(servers[i])) {
                        srv2 = int(i);
                        break;
                    }
                }
                if (srv2 >= 0) {
                    const Seconds completion2 =
                        dispatchLeg(placed, srv2, now);
                    placed.legs.push_back(
                        Leg{srv2, completion2, false});
                    servers[std::size_t(srv2)].inflight.push_back(
                        batchId);
                    events.push(Ev{completion2, kEvCompletion,
                                   seq++, batchId * 2 + 1});
                    ++rep.hedges;
                    for (const std::uint64_t id : placed.reqs)
                        rep.requests[id].hedged = true;
                }
            }
            advanceDepth(now);
            waiting -= std::uint64_t(batch);
            noteDepth(now);
            rep.batches += 1;
            batchSizeSum += double(batch);
        }
    };

    // First surviving leg to complete finalizes the batch.
    const auto finalizeLeg = [&](std::uint64_t batchId, int legIdx) {
        Batch &b = batches[batchId];
        if (b.done)
            return;
        const Leg &leg = b.legs[std::size_t(legIdx)];
        if (leg.dead)
            return;
        b.done = true;
        for (auto &l : b.legs) {
            if (l.dead)
                continue;
            auto &fl = servers[std::size_t(l.server)].inflight;
            fl.erase(std::find(fl.begin(), fl.end(), batchId));
        }
        for (const std::uint64_t id : b.reqs) {
            RequestRecord &r = rep.requests[id];
            r.server = leg.server;
            r.completionS = leg.completionS;
            const bool late =
                spec.deadlineS > 0.0 &&
                leg.completionS > r.arrivalS + spec.deadlineS;
            finish(id, late ? RequestOutcome::Timeout
                            : RequestOutcome::Ok);
        }
        rep.makespanS = std::max(rep.makespanS, leg.completionS);
    };

    // Fail-stop: kill the server's live legs; requests of batches
    // with no surviving leg fail over (front-of-queue re-enqueue, in
    // original order) or drop to the client's retry path.
    const auto failStop = [&](std::size_t srv, Seconds now) {
        Server &s = servers[srv];
        std::vector<std::uint64_t> revived;
        const std::vector<std::uint64_t> live = s.inflight;
        s.inflight.clear();
        for (const std::uint64_t batchId : live) {
            Batch &b = batches[batchId];
            bool anyAlive = false;
            for (auto &l : b.legs) {
                if (l.dead)
                    continue;
                if (l.server == int(srv)) {
                    l.dead = true;
                    ++s.stats.killedBatches;
                    ++rep.killedBatches;
                } else {
                    anyAlive = true;
                }
            }
            if (anyAlive || b.done)
                continue;
            for (const std::uint64_t id : b.reqs) {
                RequestRecord &r = rep.requests[id];
                if (spec.failures.dropInFlight) {
                    retryOrFail(id, now, RequestOutcome::Failed);
                } else {
                    ++rep.failovers;
                    ++rep.streamStats[std::size_t(r.stream)]
                          .failovers;
                    revived.push_back(id);
                }
            }
        }
        // Front-of-queue, preserving original order: these were the
        // oldest requests of their streams.
        for (std::size_t i = revived.size(); i-- > 0;) {
            const std::uint64_t id = revived[i];
            state[id] = RState::Queued;
            entryS[id] = now;
            queues[std::size_t(rep.requests[id].stream)].push_front(
                id);
        }
        if (!revived.empty()) {
            advanceDepth(now);
            waiting += revived.size();
            noteDepth(now);
        }
        // The pipeline flushed; nothing completed survives to clamp
        // post-recovery batches, and the unserved remainder of the
        // current admission interval is refunded so busy time stays
        // a true occupancy (utilization <= 1).
        s.lastCompletionS = 0.0;
        if (s.readyAtS > now) {
            s.stats.busyS -= s.readyAtS - now;
            s.readyAtS = now;
        }
    };

    while (!events.empty()) {
        const Ev ev = events.top();
        events.pop();
        // Once every request is terminal the failure process only
        // matters inside the availability window; past it the chain
        // stops regenerating and the heap drains.
        if (ev.kind >= kEvFail && ev.kind <= kEvUp &&
            unresolved == 0 && ev.t > spec.durationS)
            continue;
        switch (ev.kind) {
          case kEvArrival:
          case kEvRetry:
            // A retried request the deadline already reaped stays
            // finished; its pending retry is void.
            if (state[ev.payload] == RState::Backoff)
                admit(ev.payload, ev.t);
            break;
          case kEvCompletion:
            finalizeLeg(ev.payload / 2, int(ev.payload % 2));
            // Completions free no capacity (the initiation interval
            // does, via server-ready), so no dispatch attempt here.
            continue;
          case kEvFail: {
            Server &s = servers[ev.payload];
            ++s.stats.failures;
            ++rep.failureEvents;
            ++s.failCount;
            const bool slow =
                s.rng.uniform() < spec.failures.degradedFraction;
            const Seconds repair =
                spec.failures.mttrS > 0.0
                    ? exponential(s.rng, 1.0 / spec.failures.mttrS)
                    : 0.0;
            if (slow) {
                s.health = Health::Degraded;
                events.push(
                    Ev{ev.t + repair, kEvUp, seq++, ev.payload});
            } else {
                s.health = Health::Down;
                s.healthLog.push_back({ev.t, false});
                failStop(ev.payload, ev.t);
                events.push(
                    Ev{ev.t + repair, kEvRepair, seq++, ev.payload});
            }
            break;
          }
          case kEvRepair: {
            Server &s = servers[ev.payload];
            s.health = Health::Recovering;
            events.push(Ev{ev.t + spec.failures.recoveryS, kEvUp,
                           seq++, ev.payload});
            break;
          }
          case kEvUp: {
            Server &s = servers[ev.payload];
            if (s.health != Health::Degraded) {
                // Back from a fail-stop: fresh pipeline.
                s.healthLog.push_back({ev.t, true});
                s.readyAtS = ev.t;
            }
            s.health = Health::Up;
            const double scale =
                std::pow(spec.failures.aging, double(s.failCount));
            const Seconds ttf = exponential(
                s.rng, 1.0 / (spec.failures.mtbfS * scale));
            events.push(Ev{ev.t + ttf, kEvFail, seq++, ev.payload});
            break;
          }
          case kEvDeadline: {
            const std::uint64_t id = ev.payload;
            if (state[id] == RState::Queued) {
                auto &q = queues[std::size_t(
                    rep.requests[id].stream)];
                q.erase(std::find(q.begin(), q.end(), id));
                advanceDepth(ev.t);
                --waiting;
                noteDepth(ev.t);
                finish(id, RequestOutcome::Timeout);
            } else if (state[id] == RState::Backoff) {
                finish(id, RequestOutcome::Timeout);
            }
            // InFlight requests are judged at completion; Done ones
            // are already settled.
            break;
          }
          default:
            break; // server-ready / timeout: dispatch attempt only
        }
        tryDispatch(ev.t);
    }
    for (const auto &q : queues)
        inca_assert(q.empty(), "simulation ended with queued work");
    inca_assert(unresolved == 0,
                "simulation ended with unresolved requests");

    // ---- Roll-ups. -----------------------------------------------
    std::vector<double> latencies;
    latencies.reserve(rep.requests.size());
    double latencySum = 0.0, waitSum = 0.0;
    for (const RequestRecord &r : rep.requests) {
        ++rep.streamStats[std::size_t(r.stream)].offered;
        if (r.outcome != RequestOutcome::Ok)
            continue;
        ++rep.completed;
        ++rep.streamStats[std::size_t(r.stream)].completed;
        const double l = r.latencyS();
        latencies.push_back(l);
        latencySum += l;
        waitSum += r.waitS();
        rep.maxLatencyS = std::max(rep.maxLatencyS, l);
        if (spec.sloS > 0.0 && l <= spec.sloS)
            ++rep.withinSlo;
    }
    if (!latencies.empty()) {
        rep.meanLatencyS = latencySum / double(latencies.size());
        rep.meanWaitS = waitSum / double(latencies.size());
        rep.p50S = exactPercentile(latencies, 50.0);
        rep.p95S = exactPercentile(latencies, 95.0);
        rep.p99S = exactPercentile(latencies, 99.0);
    }
    if (rep.makespanS > 0.0) {
        rep.throughputRps =
            double(rep.completed) / rep.makespanS;
        rep.goodputRps =
            spec.sloS > 0.0
                ? double(rep.withinSlo) / rep.makespanS
                : rep.throughputRps;
        rep.meanQueueDepth = depthIntegral / rep.makespanS;
    }
    rep.meanBatchSize =
        rep.batches ? batchSizeSum / double(rep.batches) : 0.0;

    // Availability over the offered-traffic window: the measure of
    // [0, durationS] covered by >= 1 accepting server. Per-server
    // logs are clipped to the window first; a log ending "down"
    // stays down through the clip end.
    if (failuresOn) {
        struct Delta
        {
            Seconds t;
            int d;
        };
        std::vector<Delta> deltas;
        for (std::size_t i = 0; i < servers.size(); ++i) {
            Server &s = servers[i];
            Seconds upFrom = 0.0;
            bool up = true;
            Seconds acceptedLen = 0.0;
            for (const auto &tr : s.healthLog) {
                const Seconds t =
                    std::min(tr.first, spec.durationS);
                if (up && !tr.second) {
                    if (t > upFrom) {
                        deltas.push_back({upFrom, +1});
                        deltas.push_back({t, -1});
                        acceptedLen += t - upFrom;
                    }
                    up = false;
                } else if (!up && tr.second) {
                    upFrom = t;
                    up = true;
                }
            }
            if (up && spec.durationS > upFrom) {
                deltas.push_back({upFrom, +1});
                deltas.push_back({spec.durationS, -1});
                acceptedLen += spec.durationS - upFrom;
            }
            s.stats.downS = spec.durationS - acceptedLen;
        }
        std::sort(deltas.begin(), deltas.end(),
                  [](const Delta &a, const Delta &b) {
                      if (a.t != b.t)
                          return a.t < b.t;
                      return a.d < b.d;
                  });
        Seconds covered = 0.0;
        int depth = 0;
        Seconds coverFrom = 0.0;
        for (const Delta &d : deltas) {
            if (depth > 0 && d.t > coverFrom)
                covered += d.t - coverFrom;
            coverFrom = std::max(coverFrom, d.t);
            depth += d.d;
        }
        rep.availability = std::min(
            1.0, std::max(0.0, covered / spec.durationS));
        rep.unavailableS = spec.durationS - covered;
    }

    rep.servers.reserve(servers.size());
    double busySum = 0.0;
    for (const Server &s : servers) {
        ServerStats stats = s.stats;
        stats.utilization = rep.makespanS > 0.0
                                ? stats.busyS / rep.makespanS
                                : 0.0;
        busySum += stats.utilization;
        rep.servers.push_back(stats);
    }
    rep.utilization =
        servers.empty() ? 0.0 : busySum / double(servers.size());
    rep.staticEnergyJ = model.idlePowerPerServer() *
                        double(spec.replicas) * rep.makespanS;
    rep.energyJ = rep.dynamicEnergyJ + rep.staticEnergyJ;
    rep.energyPerRequestJ =
        rep.completed ? rep.energyJ / double(rep.completed) : 0.0;
    return rep;
}

} // namespace serving
} // namespace inca
