/**
 * @file
 * Virtual-time serving simulator: open-loop arrivals -> batching
 * scheduler -> replicated (possibly sharded) chip servers.
 *
 * The simulated clock is driven purely by event timestamps -- arrival
 * traces materialized up front (serving/arrivals.hh) and batch
 * service times from the memoized cost model (serving/cost_model.hh).
 * Wall-clock time never enters, so a simulation is a pure function of
 * its spec: bit-identical at any thread count and with the EvalCache
 * on or off. The only parallel phase is the pre-computation of the
 * (stream, batch size) cost table, which fans out pure cost-model
 * calls into pre-sized slots before the serial event loop runs.
 *
 * Scheduling policy: one FIFO queue per stream. A stream becomes
 * dispatchable when its queue reaches the batch-size cap or its head
 * request has waited the batch timeout. When a server is free, the
 * scheduler picks the dispatchable stream with the lowest priority
 * number (ties: oldest head request, then stream index) and dispatches
 * up to maxBatch requests from that stream only -- batches never mix
 * models. Every request schedules a timeout event, so a drained
 * arrival trace still flushes: each queued request eventually ages
 * past the timeout and leaves with a recorded latency.
 *
 * Servers admit one batch per initiation interval and complete it
 * after the batch latency; completions on one server are clamped
 * monotone (a pipeline is FIFO -- a later small batch cannot overtake
 * an earlier large one). Energy = sum of per-batch dynamic + link
 * energy, plus idle power x total chips x makespan (chips leak
 * whether busy or not).
 *
 * Chaos layer (serving/failures.hh): when a FailureSpec is enabled,
 * servers walk the up/degraded/down/recovering health machine on
 * seeded per-server failure traces; a fail-stop kills the server's
 * in-flight batches, whose requests are re-enqueued at the front of
 * their stream queue (or dropped, per spec.failures.dropInFlight).
 * Client policies: a per-request deadline, bounded retry with
 * exponential backoff + deterministic jitter, and hedged dispatch
 * onto a second idle server once a batch head has waited past
 * spec.hedgeDelayS. Admission control: per-stream queues are bounded
 * by spec.queueCap (0 = unbounded), the arriving request is the one
 * shed, and under global overload (total backlog >= cap x streams)
 * only the highest-priority class is admitted. All chaos features
 * default off, in which case the event loop takes exactly the
 * original code paths -- the report and every export are
 * byte-identical to the pre-chaos simulator.
 *
 * Availability is measured over the offered-traffic window
 * [0, durationS]: the fraction of that window with at least one
 * server accepting work (Up or Degraded). Per-server failure streams
 * are independent, so availability is monotone non-decreasing in the
 * replica count by construction.
 */

#ifndef INCA_SERVING_SIMULATOR_HH
#define INCA_SERVING_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "common/units.hh"
#include "serving/arrivals.hh"
#include "serving/cost_model.hh"
#include "serving/failures.hh"

namespace inca {
namespace serving {

/** One request class of the workload mix. */
struct StreamSpec
{
    std::string network = "vgg16"; ///< model zoo name
    double weight = 1.0;           ///< share of the arrival mix
    int priority = 0;              ///< lower dispatches first
};

/** Batch-forming policy (size cap OR head-of-line timeout). */
struct BatchPolicy
{
    int maxBatch = 8;
    Seconds timeoutS = 2e-3;
};

/** Everything that determines one serving simulation. */
struct ServingSpec
{
    bool incaEngine = true; ///< IS chip (false: WS baseline)
    arch::IncaConfig inca = arch::paperInca();
    arch::BaselineConfig ws = arch::paperBaseline();

    std::vector<StreamSpec> streams = {StreamSpec{}};
    ArrivalSpec arrivals;
    Seconds durationS = 1.0; ///< arrival-generation horizon

    int replicas = 1; ///< independent server groups
    ShardSpec shard;
    BatchPolicy batch;

    Seconds sloS = 0.0; ///< latency SLO; 0 disables goodput gating

    // -- Chaos layer; every default below means "off" and preserves
    //    the pre-chaos behavior byte-identically. -------------------
    FailureSpec failures;    ///< seeded per-server failure process
    RetryPolicy retry;       ///< client retry budget + backoff
    Seconds deadlineS = 0.0; ///< per-request deadline; 0 disables
    /** Hedge a batch onto a second idle server once its head has
     *  waited this long; 0 disables hedging. */
    Seconds hedgeDelayS = 0.0;
    /** Per-stream queue bound; arrivals to a full queue are shed.
     *  0 = unbounded (the original behavior). */
    std::uint64_t queueCap = 0;
};

/** True when any chaos feature (failures, retry, deadline, hedging,
 *  bounded queues) is active in @p spec. */
bool chaosEnabled(const ServingSpec &spec);

/** Per-request trace row (the --csv export). */
struct RequestRecord
{
    std::uint64_t id = 0;
    int stream = 0;
    int server = -1;
    int batchSize = 0;
    Seconds arrivalS = 0.0;
    Seconds dispatchS = 0.0;
    Seconds completionS = 0.0;

    // Chaos accounting (all zero / Ok on the chaos-off path).
    RequestOutcome outcome = RequestOutcome::Ok;
    int retries = 0;       ///< client retries performed
    bool hedged = false;   ///< dispatched on two servers at once
    Seconds queuedS = 0.0; ///< total time in queues, all attempts

    Seconds latencyS() const { return completionS - arrivalS; }
    Seconds waitS() const { return dispatchS - arrivalS; }
};

/** Per-server roll-up. */
struct ServerStats
{
    std::uint64_t batches = 0;
    std::uint64_t requests = 0;
    Seconds busyS = 0.0;      ///< sum of initiation intervals
    double utilization = 0.0; ///< busyS / makespan
    std::uint64_t failures = 0;      ///< failure events (both modes)
    std::uint64_t killedBatches = 0; ///< in-flight batches lost
    Seconds downS = 0.0; ///< time not accepting work (down+recovering)
};

/** Per-stream chaos counters. */
struct StreamStats
{
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t failovers = 0; ///< requests re-enqueued off a corpse
};

/** Everything one simulation produces. */
struct ServingReport
{
    ServingSpec spec; ///< echoed for the emitters

    std::uint64_t offered = 0;   ///< requests generated
    std::uint64_t completed = 0; ///< outcome Ok (== offered, chaos off)
    std::uint64_t withinSlo = 0; ///< completions meeting the SLO
    Seconds makespanS = 0.0;     ///< last completion time

    // Chaos roll-up (all zero / 1.0 on the chaos-off path).
    std::uint64_t shed = 0;     ///< admission rejections (terminal)
    std::uint64_t timedOut = 0; ///< deadline misses (terminal)
    std::uint64_t failed = 0;   ///< died with a server (terminal)
    std::uint64_t retries = 0;  ///< client retry attempts
    std::uint64_t hedges = 0;   ///< hedge legs dispatched
    std::uint64_t failovers = 0;     ///< requests re-enqueued
    std::uint64_t killedBatches = 0; ///< in-flight batches lost
    std::uint64_t failureEvents = 0; ///< failures injected (all modes)
    /** Fraction of [0, durationS] with >= 1 server accepting work. */
    double availability = 1.0;
    Seconds unavailableS = 0.0; ///< (1 - availability) * durationS
    std::vector<StreamStats> streamStats; ///< one per spec stream

    double offeredRatePerS = 0.0; ///< offered / duration
    double throughputRps = 0.0;   ///< completed / makespan
    double goodputRps = 0.0;      ///< withinSlo / makespan (SLO set)

    // Exact latency summary over every completed request.
    Seconds meanLatencyS = 0.0;
    Seconds p50S = 0.0, p95S = 0.0, p99S = 0.0;
    Seconds maxLatencyS = 0.0;
    Seconds meanWaitS = 0.0;

    double meanQueueDepth = 0.0; ///< time-averaged over [0, makespan]
    std::uint64_t maxQueueDepth = 0;
    std::uint64_t batches = 0;
    double meanBatchSize = 0.0;
    double utilization = 0.0; ///< mean server busy fraction

    Joules dynamicEnergyJ = 0.0; ///< compute + link, all batches
    Joules staticEnergyJ = 0.0;  ///< idle power x chips x makespan
    Joules energyJ = 0.0;
    Joules energyPerRequestJ = 0.0;

    std::vector<ServerStats> servers;
    std::vector<RequestRecord> requests; ///< in arrival order
    /** (time, waiting requests) at every depth change. */
    std::vector<std::pair<Seconds, std::uint64_t>> queueTimeline;
};

/**
 * Exact nearest-rank percentile of @p samples for @p q in (0, 100];
 * 0 when empty. The reference percentile the report and the metrics
 * histograms agree on.
 */
double exactPercentile(std::vector<double> samples, double q);

/** Run one simulation (pure; see file comment). */
ServingReport simulate(const ServingSpec &spec);

} // namespace serving
} // namespace inca

#endif // INCA_SERVING_SIMULATOR_HH
