#include "serving/failures.hh"

#include <cerrno>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"

namespace inca {
namespace serving {

namespace {

/** Split @p text on ':' into whole tokens (empty tokens kept). */
std::vector<std::string>
splitColons(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t colon = text.find(':', pos);
        if (colon == std::string::npos)
            colon = text.size();
        out.push_back(text.substr(pos, colon - pos));
        pos = colon + 1;
    }
    return out;
}

/** Whole-token duration ("500ms", "2s", "750us") in seconds, or die. */
Seconds
parseDurationToken(const char *flag, const std::string &token)
{
    if (token.empty())
        fatal("%s: empty duration (expected e.g. '200ms')", flag);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || errno == ERANGE)
        fatal("%s: '%s' is not a duration", flag, token.c_str());
    if (v < 0.0)
        fatal("%s: duration must be non-negative, got '%s'", flag,
              token.c_str());
    const std::string unit = end;
    if (unit.empty()) {
        if (v == 0.0)
            return 0.0;
        fatal("%s: '%s' needs a unit suffix (ns, us, ms, s)", flag,
              token.c_str());
    }
    if (unit == "ns")
        return v * 1e-9;
    if (unit == "us")
        return v * 1e-6;
    if (unit == "ms")
        return v * 1e-3;
    if (unit == "s")
        return v;
    fatal("%s: unknown duration unit '%s' in '%s'", flag,
          unit.c_str(), token.c_str());
}

/** Whole-token double, or die. */
double
parseDoubleToken(const char *flag, const std::string &token)
{
    if (token.empty())
        fatal("%s: empty number", flag);
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not a number", flag, token.c_str());
    return v;
}

/** Whole-token non-negative integer, or die. */
long long
parseIntToken(const char *flag, const std::string &token)
{
    if (token.empty())
        fatal("%s: empty count", flag);
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || errno == ERANGE)
        fatal("%s: '%s' is not an integer", flag, token.c_str());
    return v;
}

} // namespace

const char *
healthName(Health h)
{
    switch (h) {
      case Health::Up:
        return "up";
      case Health::Degraded:
        return "degraded";
      case Health::Down:
        return "down";
      case Health::Recovering:
        return "recovering";
    }
    panic("unreachable health state %d", int(h));
}

const char *
requestOutcomeName(RequestOutcome o)
{
    switch (o) {
      case RequestOutcome::Ok:
        return "ok";
      case RequestOutcome::Shed:
        return "shed";
      case RequestOutcome::Timeout:
        return "timeout";
      case RequestOutcome::Failed:
        return "failed";
    }
    panic("unreachable request outcome %d", int(o));
}

FailureSpec
parseFailureSpec(const char *flag, const char *text)
{
    FailureSpec spec;
    if (!text || *text == '\0')
        fatal("%s needs 'none' or mtbf:mttr (e.g. 200ms:50ms), got "
              "an empty value",
              flag);
    const std::string s = text;
    if (s == "none")
        return spec; // disabled
    const std::vector<std::string> parts = splitColons(s);
    if (parts.size() < 2 || parts.size() > 4)
        fatal("%s: '%s' is not mtbf:mttr[:degraded-frac[:slowdown]]",
              flag, text);
    spec.enabled = true;
    spec.mtbfS = parseDurationToken(flag, parts[0]);
    spec.mttrS = parseDurationToken(flag, parts[1]);
    if (spec.mtbfS <= 0.0)
        fatal("%s: MTBF must be positive, got '%s'", flag,
              parts[0].c_str());
    if (parts.size() >= 3) {
        spec.degradedFraction = parseDoubleToken(flag, parts[2]);
        if (spec.degradedFraction < 0.0 ||
            spec.degradedFraction > 1.0)
            fatal("%s: degraded fraction %s outside [0, 1]", flag,
                  parts[2].c_str());
    }
    if (parts.size() == 4) {
        spec.slowdownFactor = parseDoubleToken(flag, parts[3]);
        if (spec.slowdownFactor < 1.0)
            fatal("%s: slowdown factor %s must be >= 1", flag,
                  parts[3].c_str());
    }
    return spec;
}

RetryPolicy
parseRetrySpec(const char *flag, const char *text)
{
    RetryPolicy policy;
    if (!text || *text == '\0')
        fatal("%s needs 'none' or budget:backoff (e.g. 3:1ms), got "
              "an empty value",
              flag);
    const std::string s = text;
    if (s == "none") {
        policy.budget = 0;
        return policy;
    }
    const std::vector<std::string> parts = splitColons(s);
    if (parts.size() < 2 || parts.size() > 3)
        fatal("%s: '%s' is not budget:backoff[:jitter]", flag, text);
    const long long budget = parseIntToken(flag, parts[0]);
    if (budget < 0)
        fatal("%s: retry budget must be non-negative, got %lld", flag,
              budget);
    policy.budget = int(budget);
    policy.backoffBaseS = parseDurationToken(flag, parts[1]);
    if (policy.budget > 0 && policy.backoffBaseS <= 0.0)
        fatal("%s: backoff base must be positive, got '%s'", flag,
              parts[1].c_str());
    if (parts.size() == 3) {
        policy.jitter = parseDoubleToken(flag, parts[2]);
        if (policy.jitter < 0.0 || policy.jitter > 1.0)
            fatal("%s: jitter %s outside [0, 1]", flag,
                  parts[2].c_str());
    }
    return policy;
}

FailureSpec
failureSpecFromEndurance(const arch::EnduranceReport &er,
                         double iterationsPerS, Seconds mttrS,
                         std::uint64_t seed)
{
    inca_assert(iterationsPerS > 0.0,
                "iteration rate %f must be positive", iterationsPerS);
    inca_assert(er.iterationsToWearOut > 0.0,
                "endurance report has no finite lifetime");
    FailureSpec spec;
    spec.enabled = true;
    spec.mtbfS = er.iterationsToWearOut / iterationsPerS;
    spec.mttrS = mttrS;
    spec.seed = seed;
    // Each repair restarts on already-cycled cells; first-order model
    // of the endurance curve's downward slope.
    spec.aging = 0.9;
    return spec;
}

} // namespace serving
} // namespace inca
