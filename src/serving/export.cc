#include "serving/export.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/export_util.hh"
#include "common/metrics.hh"
#include "common/trace.hh"

namespace inca {
namespace serving {

namespace {

std::string
num17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

const char *
engineName(const ServingSpec &spec)
{
    return spec.incaEngine ? "inca" : "ws";
}

std::string
workloadName(const ServingSpec &spec)
{
    std::string out;
    for (const StreamSpec &s : spec.streams) {
        if (!out.empty())
            out += '+';
        out += s.network;
    }
    return out;
}

std::uint64_t
configHash(const ServingSpec &spec)
{
    const BatchCostModel model =
        spec.incaEngine ? BatchCostModel(spec.inca, spec.shard)
                        : BatchCostModel(spec.ws, spec.shard);
    return model.configKeyHash();
}

} // namespace

std::string
reportText(const ServingReport &rep)
{
    const ServingSpec &spec = rep.spec;
    std::ostringstream os;
    os << "=== serving report: " << workloadName(spec) << " on "
       << engineName(spec) << " ===\n";
    os << "arrivals        " << arrivalKindName(spec.arrivals.kind)
       << "  rate " << fmt("%.3f", spec.arrivals.ratePerS)
       << "/s  seed " << spec.arrivals.seed << "  duration "
       << fmt("%.3f", spec.durationS) << " s\n";
    os << "servers         " << spec.replicas << " x "
       << spec.shard.chips << " chip"
       << (spec.shard.chips > 1 ? "s" : "") << " ("
       << shardKindName(spec.shard.kind) << ")\n";
    os << "batch policy    max " << spec.batch.maxBatch
       << ", timeout " << fmt("%.3f", spec.batch.timeoutS * 1e3)
       << " ms\n";
    if (spec.streams.size() > 1) {
        os << "streams        ";
        for (std::size_t i = 0; i < spec.streams.size(); ++i) {
            const StreamSpec &s = spec.streams[i];
            os << " " << s.network << "(w "
               << fmt("%.3g", s.weight) << ", prio " << s.priority
               << ")";
        }
        os << "\n";
    }
    os << "offered         " << rep.offered << " requests (realized "
       << fmt("%.3f", rep.offeredRatePerS) << "/s)\n";
    os << "completed       " << rep.completed;
    if (spec.sloS > 0.0)
        os << "  (within " << fmt("%.3f", spec.sloS * 1e3)
           << " ms SLO: " << rep.withinSlo << ")";
    os << "\n";
    if (chaosEnabled(spec)) {
        os << "outcomes        ok " << rep.completed << "  shed "
           << rep.shed << "  timeout " << rep.timedOut
           << "  failed " << rep.failed << "\n";
        os << "robustness      retries " << rep.retries
           << "  hedges " << rep.hedges << "  failovers "
           << rep.failovers << "\n";
        if (spec.failures.enabled) {
            os << "availability    "
               << fmt("%.6f", rep.availability) << " (";
            if (rep.availability >= 1.0)
                os << "inf";
            else
                os << fmt("%.2f",
                          -std::log10(1.0 - rep.availability));
            os << " nines)  unavailable "
               << fmt("%.3f", rep.unavailableS * 1e3) << " ms\n";
            os << "failures        " << rep.failureEvents
               << " events  killed batches " << rep.killedBatches
               << "\n";
        }
        for (std::size_t i = 0; i < rep.streamStats.size(); ++i) {
            const StreamStats &ss = rep.streamStats[i];
            os << "  stream " << spec.streams[i].network
               << "  offered " << ss.offered << "  ok "
               << ss.completed << "  shed " << ss.shed
               << "  timeout " << ss.timedOut << "  failed "
               << ss.failed << "  retries " << ss.retries
               << "  failovers " << ss.failovers << "\n";
        }
    }
    os << "makespan        " << fmt("%.6f", rep.makespanS) << " s\n";
    os << "latency         mean "
       << fmt("%.3f", rep.meanLatencyS * 1e3) << " ms  p50 "
       << fmt("%.3f", rep.p50S * 1e3) << " ms  p95 "
       << fmt("%.3f", rep.p95S * 1e3) << " ms  p99 "
       << fmt("%.3f", rep.p99S * 1e3) << " ms  max "
       << fmt("%.3f", rep.maxLatencyS * 1e3) << " ms\n";
    os << "queue           mean depth "
       << fmt("%.3f", rep.meanQueueDepth) << "  max "
       << rep.maxQueueDepth << "  mean wait "
       << fmt("%.3f", rep.meanWaitS * 1e3) << " ms\n";
    os << "batches         " << rep.batches << " (mean size "
       << fmt("%.3f", rep.meanBatchSize) << ")\n";
    os << "utilization     mean " << fmt("%.4f", rep.utilization)
       << " [";
    for (std::size_t i = 0; i < rep.servers.size(); ++i)
        os << (i ? " " : "")
           << fmt("%.4f", rep.servers[i].utilization);
    os << "]\n";
    os << "throughput      " << fmt("%.3f", rep.throughputRps)
       << " req/s\n";
    os << "goodput         " << fmt("%.3f", rep.goodputRps)
       << " req/s\n";
    os << "energy          dynamic "
       << fmt("%.6g", rep.dynamicEnergyJ) << " J  static "
       << fmt("%.6g", rep.staticEnergyJ) << " J  total "
       << fmt("%.6g", rep.energyJ) << " J\n";
    os << "energy/request  "
       << fmt("%.6g", rep.energyPerRequestJ * 1e3) << " mJ\n";
    return os.str();
}

std::string
reportJson(const ServingReport &rep)
{
    const ServingSpec &spec = rep.spec;
    std::ostringstream os;
    os << "{\n";
    os << "  \"kind\": \"serving.report\",\n";
    os << "  \"engine\": \"" << engineName(spec) << "\",\n";
    os << "  \"workload\": [";
    for (std::size_t i = 0; i < spec.streams.size(); ++i) {
        const StreamSpec &s = spec.streams[i];
        os << (i ? ", " : "") << "{\"network\": \""
           << jsonEscape(s.network)
           << "\", \"weight\": " << num17(s.weight)
           << ", \"priority\": " << s.priority << "}";
    }
    os << "],\n";
    os << "  \"arrivals\": {\"kind\": \""
       << arrivalKindName(spec.arrivals.kind)
       << "\", \"rate_per_s\": " << num17(spec.arrivals.ratePerS)
       << ", \"seed\": " << spec.arrivals.seed
       << ", \"burst_factor\": " << num17(spec.arrivals.burstFactor)
       << ", \"mean_on_s\": " << num17(spec.arrivals.meanOnS)
       << ", \"mean_off_s\": " << num17(spec.arrivals.meanOffS)
       << ", \"diurnal_period_s\": "
       << num17(spec.arrivals.diurnalPeriodS)
       << ", \"diurnal_depth\": "
       << num17(spec.arrivals.diurnalDepth) << "},\n";
    os << "  \"duration_s\": " << num17(spec.durationS) << ",\n";
    os << "  \"replicas\": " << spec.replicas << ",\n";
    os << "  \"shard\": {\"kind\": \""
       << shardKindName(spec.shard.kind)
       << "\", \"chips\": " << spec.shard.chips
       << ", \"link_bandwidth_bytes_per_s\": "
       << num17(spec.shard.link.bandwidthBytesPerS)
       << ", \"link_latency_s\": " << num17(spec.shard.link.latencyS)
       << ", \"link_energy_per_byte_j\": "
       << num17(spec.shard.link.energyPerByteJ) << "},\n";
    os << "  \"batch\": {\"max\": " << spec.batch.maxBatch
       << ", \"timeout_s\": " << num17(spec.batch.timeoutS)
       << "},\n";
    os << "  \"slo_s\": " << num17(spec.sloS) << ",\n";
    os << "  \"offered\": " << rep.offered << ",\n";
    os << "  \"completed\": " << rep.completed << ",\n";
    os << "  \"within_slo\": " << rep.withinSlo << ",\n";
    os << "  \"makespan_s\": " << num17(rep.makespanS) << ",\n";
    os << "  \"offered_rate_per_s\": " << num17(rep.offeredRatePerS)
       << ",\n";
    os << "  \"throughput_rps\": " << num17(rep.throughputRps)
       << ",\n";
    os << "  \"goodput_rps\": " << num17(rep.goodputRps) << ",\n";
    os << "  \"latency_s\": {\"mean\": " << num17(rep.meanLatencyS)
       << ", \"p50\": " << num17(rep.p50S)
       << ", \"p95\": " << num17(rep.p95S)
       << ", \"p99\": " << num17(rep.p99S)
       << ", \"max\": " << num17(rep.maxLatencyS)
       << ", \"mean_wait\": " << num17(rep.meanWaitS) << "},\n";
    os << "  \"queue\": {\"mean_depth\": "
       << num17(rep.meanQueueDepth)
       << ", \"max_depth\": " << rep.maxQueueDepth
       << ", \"timeline_points\": " << rep.queueTimeline.size()
       << "},\n";
    os << "  \"batches\": {\"count\": " << rep.batches
       << ", \"mean_size\": " << num17(rep.meanBatchSize) << "},\n";
    if (chaosEnabled(spec)) {
        os << "  \"chaos\": {\n";
        os << "    \"failures\": {\"enabled\": "
           << (spec.failures.enabled ? "true" : "false")
           << ", \"mtbf_s\": " << num17(spec.failures.mtbfS)
           << ", \"mttr_s\": " << num17(spec.failures.mttrS)
           << ", \"degraded_fraction\": "
           << num17(spec.failures.degradedFraction)
           << ", \"slowdown_factor\": "
           << num17(spec.failures.slowdownFactor)
           << ", \"recovery_s\": " << num17(spec.failures.recoveryS)
           << ", \"aging\": " << num17(spec.failures.aging)
           << ", \"seed\": " << spec.failures.seed
           << ", \"drop_in_flight\": "
           << (spec.failures.dropInFlight ? "true" : "false")
           << "},\n";
        os << "    \"retry\": {\"budget\": " << spec.retry.budget
           << ", \"backoff_base_s\": "
           << num17(spec.retry.backoffBaseS)
           << ", \"jitter\": " << num17(spec.retry.jitter)
           << "},\n";
        os << "    \"deadline_s\": " << num17(spec.deadlineS)
           << ",\n";
        os << "    \"hedge_delay_s\": " << num17(spec.hedgeDelayS)
           << ",\n";
        os << "    \"queue_cap\": " << spec.queueCap << ",\n";
        os << "    \"shed\": " << rep.shed << ",\n";
        os << "    \"timed_out\": " << rep.timedOut << ",\n";
        os << "    \"failed\": " << rep.failed << ",\n";
        os << "    \"retries\": " << rep.retries << ",\n";
        os << "    \"hedges\": " << rep.hedges << ",\n";
        os << "    \"failovers\": " << rep.failovers << ",\n";
        os << "    \"killed_batches\": " << rep.killedBatches
           << ",\n";
        os << "    \"failure_events\": " << rep.failureEvents
           << ",\n";
        os << "    \"availability\": " << num17(rep.availability)
           << ",\n";
        os << "    \"unavailable_s\": " << num17(rep.unavailableS)
           << ",\n";
        os << "    \"streams\": [";
        for (std::size_t i = 0; i < rep.streamStats.size(); ++i) {
            const StreamStats &ss = rep.streamStats[i];
            os << (i ? ", " : "") << "{\"offered\": " << ss.offered
               << ", \"completed\": " << ss.completed
               << ", \"shed\": " << ss.shed
               << ", \"timed_out\": " << ss.timedOut
               << ", \"failed\": " << ss.failed
               << ", \"retries\": " << ss.retries
               << ", \"failovers\": " << ss.failovers << "}";
        }
        os << "]\n";
        os << "  },\n";
    }
    os << "  \"utilization\": " << num17(rep.utilization) << ",\n";
    os << "  \"servers\": [";
    for (std::size_t i = 0; i < rep.servers.size(); ++i) {
        const ServerStats &s = rep.servers[i];
        os << (i ? ", " : "") << "{\"batches\": " << s.batches
           << ", \"requests\": " << s.requests
           << ", \"busy_s\": " << num17(s.busyS)
           << ", \"utilization\": " << num17(s.utilization);
        if (chaosEnabled(spec))
            os << ", \"failures\": " << s.failures
               << ", \"killed_batches\": " << s.killedBatches
               << ", \"down_s\": " << num17(s.downS);
        os << "}";
    }
    os << "],\n";
    os << "  \"energy_j\": {\"dynamic\": "
       << num17(rep.dynamicEnergyJ)
       << ", \"static\": " << num17(rep.staticEnergyJ)
       << ", \"total\": " << num17(rep.energyJ)
       << ", \"per_request\": " << num17(rep.energyPerRequestJ)
       << "},\n";
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%" PRIx64,
                  configHash(spec));
    os << "  \"provenance\": {\n"
       << provenanceJson(std::string("\"config_key_hash\": \"") +
                             hex + "\"",
                         "    ")
       << "  }\n";
    os << "}\n";
    return os.str();
}

std::string
requestsCsv(const ServingReport &rep)
{
    const bool chaos = chaosEnabled(rep.spec);
    std::ostringstream os;
    os << "id,stream,network,arrival_s,dispatch_s,completion_s,"
          "latency_s,wait_s,server,batch_size";
    if (chaos)
        os << ",outcome,retries,hedged,queued_s";
    os << "\n";
    for (const RequestRecord &r : rep.requests) {
        os << r.id << "," << r.stream << ","
           << csvField(
                  rep.spec.streams[std::size_t(r.stream)].network)
           << "," << num17(r.arrivalS) << "," << num17(r.dispatchS)
           << "," << num17(r.completionS) << ","
           << num17(r.latencyS()) << "," << num17(r.waitS()) << ","
           << r.server << "," << r.batchSize;
        if (chaos)
            os << "," << requestOutcomeName(r.outcome) << ","
               << r.retries << "," << (r.hedged ? 1 : 0) << ","
               << num17(r.queuedS);
        os << "\n";
    }
    return os.str();
}

std::string
timelineCsv(const ServingReport &rep)
{
    std::ostringstream os;
    os << "time_s,queue_depth\n";
    for (const auto &point : rep.queueTimeline)
        os << num17(point.first) << "," << point.second << "\n";
    return os.str();
}

void
publishMetrics(const ServingReport &rep)
{
    metrics::gauge("serving.offered").set(double(rep.offered));
    metrics::gauge("serving.completed").set(double(rep.completed));
    metrics::gauge("serving.within_slo")
        .set(double(rep.withinSlo));
    metrics::gauge("serving.makespan_s").set(rep.makespanS);
    metrics::gauge("serving.throughput_rps").set(rep.throughputRps);
    metrics::gauge("serving.goodput_rps").set(rep.goodputRps);
    metrics::gauge("serving.p99_ms").set(rep.p99S * 1e3);
    metrics::gauge("serving.mean_queue_depth")
        .set(rep.meanQueueDepth);
    metrics::gauge("serving.max_queue_depth")
        .set(double(rep.maxQueueDepth));
    metrics::gauge("serving.utilization").set(rep.utilization);
    metrics::gauge("serving.energy_per_request_j")
        .set(rep.energyPerRequestJ);
    const bool chaos = chaosEnabled(rep.spec);
    if (chaos) {
        metrics::counter("serving.shed").inc(rep.shed);
        metrics::counter("serving.timeouts").inc(rep.timedOut);
        metrics::counter("serving.failed").inc(rep.failed);
        metrics::counter("serving.retries").inc(rep.retries);
        metrics::counter("serving.hedges").inc(rep.hedges);
        metrics::counter("serving.failovers").inc(rep.failovers);
        metrics::gauge("serving.availability")
            .set(rep.availability);
    }
    auto &latency = metrics::histogram("serving.latency_us");
    for (const RequestRecord &r : rep.requests) {
        // Only genuinely served requests carry a latency; shed or
        // failed ones have no completion time.
        if (chaos && r.outcome != RequestOutcome::Ok)
            continue;
        latency.observe(r.latencyS() * 1e6);
    }
}

void
emitTrace(const ServingReport &rep)
{
    if (!trace::enabled())
        return;
    for (const auto &point : rep.queueTimeline)
        trace::counterAt("serving.queue_depth",
                         std::int64_t(point.first * 1e6),
                         double(point.second));
    trace::emitInstant("serving.makespan",
                       std::int64_t(rep.makespanS * 1e6));
}

} // namespace serving
} // namespace inca
