/**
 * @file
 * Open-loop request arrival processes for the serving simulator.
 *
 * Three seeded generators over virtual time: Poisson (exponential
 * interarrivals at a constant rate), bursty (a two-state on/off MMPP
 * whose sojourns are exponential and whose time-averaged rate equals
 * the requested rate), and diurnal (a non-homogeneous Poisson process
 * with sinusoidal rate modulation, drawn by thinning). Every process
 * is a pure function of (spec, duration): the full arrival trace is
 * materialized up front from one SplitMix64 stream, so the simulator
 * that consumes it never touches an RNG and two runs with the same
 * spec are bit-identical at any thread count.
 */

#ifndef INCA_SERVING_ARRIVALS_HH
#define INCA_SERVING_ARRIVALS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace inca {
class CacheKey;
namespace serving {

/** Arrival process shape. */
enum class ArrivalKind
{
    Poisson, ///< constant-rate, exponential interarrivals
    Bursty,  ///< on/off MMPP: bursts at a multiple of the mean rate
    Diurnal, ///< sinusoidal rate modulation (thinned Poisson)
};

/** "poisson" / "bursty" / "diurnal". */
const char *arrivalKindName(ArrivalKind kind);

/** Parse an arrival-kind name; fatal on anything else. */
ArrivalKind arrivalKindByName(const std::string &name);

/** Everything that determines an arrival trace (plus the duration). */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    double ratePerS = 100.0; ///< time-averaged offered rate
    std::uint64_t seed = 1;

    /**
     * Bursty: the on-state arrival rate is burstFactor x ratePerS;
     * the off-state rate is derived so the time average stays
     * ratePerS (and clamps at zero when the factor saturates the
     * on-fraction). Sojourns are exponential with the given means.
     */
    double burstFactor = 4.0;
    Seconds meanOnS = 0.05;
    Seconds meanOffS = 0.20;

    /**
     * Diurnal: rate(t) = ratePerS * (1 + depth * sin(2 pi t / period)).
     * depth in [0, 1); the period is a scaled-down "day".
     */
    Seconds diurnalPeriodS = 2.0;
    double diurnalDepth = 0.8;
};

/** Append every field of @p spec to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const ArrivalSpec &spec);

/**
 * Generate every arrival timestamp in [0, duration), sorted
 * ascending. Pure and deterministic (see file comment); panics on a
 * non-positive rate or duration, or an out-of-range burst/diurnal
 * parameter.
 */
std::vector<Seconds> generateArrivals(const ArrivalSpec &spec,
                                      Seconds duration);

} // namespace serving
} // namespace inca

#endif // INCA_SERVING_ARRIVALS_HH
