#include "baseline/engine.hh"

#include <algorithm>
#include <cmath>

#include "arch/power.hh"
#include "baseline/mapping.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "dataflow/access_model.hh"

namespace inca {
namespace baseline {

using arch::LayerCost;
using arch::Phase;
using arch::RunCost;
using nn::LayerDesc;
using nn::LayerKind;

namespace {

/** Per-layer evaluations, shared by every BaselineEngine instance. */
EvalCache<LayerCost> &
wsLayerCache()
{
    static EvalCache<LayerCost> *c =
        new EvalCache<LayerCost>("ws.layer");
    return *c;
}

/** Whole-run evaluations (one network, phase, batch). */
EvalCache<RunCost> &
wsRunCache()
{
    static EvalCache<RunCost> *c = new EvalCache<RunCost>("ws.run");
    return *c;
}

/** Wall clock of one cached layer-cost lookup (hit or miss). */
metrics::Histogram &
layerEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.layer_eval_us");
    return *h;
}

/** Wall clock of one cached whole-run evaluation. */
metrics::Histogram &
runEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.run_eval_us");
    return *h;
}

} // namespace

BaselineEngine::BaselineEngine(arch::BaselineConfig cfg)
    : cfg_(std::move(cfg)), idlePower_(arch::baselineIdlePower(cfg_))
{
    arch::appendKey(cfgKey_, cfg_);
}

bool
BaselineEngine::weightsReloaded(const nn::NetworkDesc &net,
                                bool training) const
{
    // Training keeps a transposed copy next to the originals
    // (Limitation 2), doubling the cell demand.
    const double cellsNeeded = double(net.totalWeights()) *
                               cfg_.weightBits * (training ? 2.0 : 1.0);
    return cellsNeeded > double(cfg_.totalCells());
}

double
BaselineEngine::bufferShare(const nn::NetworkDesc &net,
                            const nn::LayerDesc &layer) const
{
    // Layers share the chip's buffers in proportion to the crossbars
    // their pipeline stage occupies.
    const double totalArrays = double(arraysForNetwork(net, cfg_));
    if (totalArrays == 0.0)
        return 0.0;
    const double layerArrays = double(mapLayer(layer, cfg_).arrays());
    const double totalBuffer =
        double(cfg_.org.numTiles) * cfg_.buffer.capacity;
    return totalBuffer * layerArrays / totalArrays;
}

LayerCost
BaselineEngine::forwardLayer(const nn::NetworkDesc &net,
                             const LayerDesc &layer, int batchSize) const
{
    trace::Span span(trace::spanName("ws.fwd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("F");
    nn::appendKey(key, layer);
    // The only way the network influences a layer's cost is through
    // its buffer share; keying on that value keeps the cache shared
    // across networks that grant the same share.
    key.add(batchSize).add(bufferShare(net, layer));
    LayerCost cost = wsLayerCache().getOrCompute(key, [&] {
        return computeForwardLayer(net, layer, batchSize);
    });
    cost.name = layer.name;
    cost.kind = layer.kind;
    return cost;
}

LayerCost
BaselineEngine::computeForwardLayer(const nn::NetworkDesc &net,
                                    const LayerDesc &layer,
                                    int batchSize) const
{
    LayerCost cost;
    cost.name = layer.name;
    cost.kind = layer.kind;

    const WsMapping m = mapLayer(layer, cfg_);
    const double images = batchSize;
    const double wBits = cfg_.weightBits;
    const double aBits = cfg_.activationBits;
    const double s = cfg_.subarraySize;

    // Window activations per image: every window position, every
    // input-bit cycle (bit-serial DAC streaming, ISAAC style).
    const double activations = double(m.windows) * aBits;

    // --- Array reads: the driven rows cross EVERY column of their
    // arrays (1T1R has no column gating), so unused columns still burn
    // read current -- the coarse-grained cost of Limitation 3. Per-
    // column sample-and-holds (as in ISAAC) keep the bias to one read
    // pulse while the shared ADC scans.
    const double activeCells = double(m.usedRows) *
                               double(m.colTiles) * s *
                               double(m.channelGroups);
    const double cellReads = activations * activeCells * images;
    cost.stats.add("count.array.read", cellReads);
    cost.stats.add("energy.array.read",
                   cellReads * cfg_.device.avgReadEnergy());

    // --- ADC: every column of every active array converts each cycle.
    const double conversions =
        activations * double(m.arrays()) * s * images;
    cost.stats.add("count.adc", conversions);
    cost.stats.add("energy.adc",
                   conversions * cfg_.adc().energyPerConversion);

    // --- DAC drivers on the used rows.
    cost.stats.add("energy.dac",
                   activations * double(m.usedRows) *
                       double(m.channelGroups) * images *
                       circuit::makeDac().energyPerActivation);

    // --- Digital: shift-accumulate per conversion, adders joining
    // row tiles, output registers.
    cost.stats.add("energy.digital.shift",
                   conversions * cfg_.digital.shiftAccumulate);
    const double outputs = double(layer.outputCount());
    cost.stats.add("energy.digital.adders",
                   outputs * aBits * images *
                       circuit::adderTreeEnergy(cfg_.digital,
                                                double(m.rowTiles)));
    cost.stats.add("energy.digital.register",
                   outputs * images * 2.0 * cfg_.digital.registerAccess);

    // --- Buffers: inputs fetched per output element (Eq. 5 x OH x OW)
    // and outputs saved per position (Eq. 6) to keep the inter-layer
    // pipeline running (Limitation 1).
    const dataflow::AccessConfig acc{int(wBits),
                                     cfg_.buffer.port.widthBits};
    const double fetchWords =
        double(dataflow::fetchWordsPerOutput(layer, acc)) *
        double(m.windows) * images;
    const double saveWords_ =
        double(dataflow::saveWords(layer, acc)) * images;
    cost.stats.add("count.buffer.read", fetchWords);
    cost.stats.add("energy.buffer.read",
                   cfg_.buffer.readEnergy(fetchWords));
    cost.stats.add("count.buffer.write", saveWords_);
    cost.stats.add("energy.buffer.write",
                   cfg_.buffer.writeEnergy(saveWords_));

    // --- DRAM: activations that exceed the stage's buffer share spill
    // off-chip (written by this layer, read back by the next).
    const double outBytes = outputs * aBits / 8.0;
    const double spill =
        std::max(0.0, outBytes - bufferShare(net, layer));
    double dramBytes = 2.0 * spill * images;
    cost.stats.add("count.dram.bytes", dramBytes);
    cost.stats.add("energy.dram.activation",
                   cfg_.dram.accessEnergy(dramBytes));

    // --- Latency per image: windows stream through the crossbars one
    // per aBits cycles; all kernels' columns compute in parallel.
    cost.latency = activations * cfg_.readCycle();
    return cost;
}

LayerCost
BaselineEngine::auxLayer(const LayerDesc &layer, int batchSize) const
{
    trace::Span span(trace::spanName("ws.aux ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("A");
    nn::appendKey(key, layer);
    key.add(batchSize);
    LayerCost cost = wsLayerCache().getOrCompute(
        key, [&] { return computeAuxLayer(layer, batchSize); });
    cost.name = layer.name;
    cost.kind = layer.kind;
    return cost;
}

LayerCost
BaselineEngine::computeAuxLayer(const LayerDesc &layer,
                                int batchSize) const
{
    LayerCost cost;
    cost.name = layer.name;
    cost.kind = layer.kind;
    const double images = batchSize;
    const double outputs = double(layer.outputCount());
    switch (layer.kind) {
      case LayerKind::ReLU:
        cost.stats.add("energy.digital.post",
                       outputs * images * cfg_.digital.reluOp);
        break;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        cost.stats.add("energy.digital.post",
                       outputs * images * double(layer.kh) * layer.kw *
                           cfg_.digital.maxPoolCompare);
        break;
      case LayerKind::Add:
        cost.stats.add("energy.digital.post",
                       outputs * images * cfg_.digital.adder8bit);
        break;
      default:
        break;
    }
    cost.latency = 0.0;
    return cost;
}

RunCost
BaselineEngine::inference(const nn::NetworkDesc &net,
                          int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("ws.inference ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-inference");
    nn::appendKey(key, net);
    key.add(batchSize);
    return wsRunCache().getOrCompute(
        key, [&] { return computeInference(net, batchSize); });
}

RunCost
BaselineEngine::computeInference(const nn::NetworkDesc &net,
                                 int batchSize) const
{
    RunCost run;
    run.network = net.name;
    run.phase = Phase::Inference;
    run.batchSize = batchSize;
    run.configKeyHash = cfgKey_.hash();

    Seconds fill = 0.0;
    Seconds slowest = 0.0;
    Seconds stageSum = 0.0;
    int stages = 0;
    for (const auto &layer : net.layers) {
        LayerCost cost = layer.isConvLike()
                             ? forwardLayer(net, layer, batchSize)
                             : auxLayer(layer, batchSize);
        // Per-image stage time; the pipeline overlaps images.
        const Seconds stage = cost.latency;
        fill += stage;
        slowest = std::max(slowest, stage);
        if (layer.isConvLike()) {
            stageSum += stage;
            ++stages;
        }
        run.layers.push_back(std::move(cost));
    }

    // ISAAC balances its pipeline by replicating the weights of the
    // window-heavy early layers over spare crossbars; a perfectly
    // balanced pipeline would run at the mean stage time, and the
    // residual imbalance after replication is modelled as 1.5x.
    constexpr double kPipelineImbalance = 1.5;
    if (stages > 0) {
        const Seconds balanced =
            kPipelineImbalance * stageSum / double(stages);
        slowest = std::min(slowest, balanced);
    }

    // Weight reloading when the model exceeds on-chip RRAM: stream the
    // weights from DRAM and reprogram the cells once per batch.
    if (weightsReloaded(net, false)) {
        LayerCost reload;
        reload.name = "weight-reload";
        reload.kind = LayerKind::Conv;
        const double weightBits =
            double(net.totalWeights()) * cfg_.weightBits;
        const double bytes = weightBits / 8.0;
        reload.stats.add("count.dram.bytes", bytes);
        reload.stats.add("energy.dram.weights",
                         cfg_.dram.accessEnergy(bytes));
        reload.stats.add("energy.array.write",
                         weightBits * cfg_.device.avgWriteEnergy());
        // Rows program in parallel across arrays; expose the stream.
        reload.latency = cfg_.dram.streamTime(bytes);
        fill += reload.latency;
        run.layers.push_back(std::move(reload));
    }

    // ISAAC pipelining: fill once, then one image per slowest stage.
    run.latency = fill + double(batchSize - 1) * slowest;
    run.staticEnergy = idlePower_ * run.latency;
    return run;
}

RunCost
BaselineEngine::training(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("ws.training ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-training");
    nn::appendKey(key, net);
    key.add(batchSize);
    return wsRunCache().getOrCompute(
        key, [&] { return computeTraining(net, batchSize); });
}

RunCost
BaselineEngine::computeTraining(const nn::NetworkDesc &net,
                                int batchSize) const
{
    RunCost run;
    run.network = net.name;
    run.phase = Phase::Training;
    run.batchSize = batchSize;
    run.configKeyHash = cfgKey_.hash();

    // Forward, error backpropagation, and weight-gradient passes all
    // run on the crossbars with comparable window/bit-cycle structure.
    // PipeLayer pipelines images through training too, but -- unlike
    // inference -- the pipeline cannot be balanced by replicating the
    // early layers' weights, because every replica would have to be
    // reprogrammed at each update. The batch therefore drains at the
    // raw slowest stage, three passes deep.
    Seconds slowest = 0.0;
    Seconds fill = 0.0;
    const double passes = 3.0;
    for (const auto &layer : net.layers) {
        if (layer.isConvLike()) {
            LayerCost fwd = forwardLayer(net, layer, batchSize);
            const Seconds stage = fwd.latency;

            LayerCost bwd = fwd;
            bwd.name = layer.name + ".bwd";
            LayerCost upd = fwd;
            upd.name = layer.name + ".upd";
            // The backward pass reads the transposed-weight copy; the
            // update pass writes activations/errors to RRAM and
            // reprograms the weight cells (original + transposed).
            const double aBits = cfg_.activationBits;
            const double actWrites =
                double(layer.inputCount()) * aBits * batchSize;
            bwd.stats.add("count.array.write", actWrites);
            bwd.stats.add("energy.array.write",
                          actWrites * cfg_.device.avgWriteEnergy());
            const double weightCellWrites =
                2.0 * double(layer.weightCount()) * cfg_.weightBits;
            upd.stats.add("count.array.write", weightCellWrites);
            upd.stats.add("energy.array.write",
                          weightCellWrites *
                              cfg_.device.avgWriteEnergy());
            upd.latency += weightCellWrites > 0.0 ? cfg_.device.tWrite
                                                  : 0.0;

            slowest = std::max(slowest, stage);
            fill += passes * stage;
            run.layers.push_back(std::move(fwd));
            run.layers.push_back(std::move(bwd));
            run.layers.push_back(std::move(upd));
        } else {
            LayerCost aux = auxLayer(layer, batchSize);
            LayerCost auxBwd = aux;
            auxBwd.name = layer.name + ".bwd";
            run.layers.push_back(std::move(aux));
            run.layers.push_back(std::move(auxBwd));
        }
    }

    if (weightsReloaded(net, true)) {
        LayerCost reload;
        reload.name = "weight-reload";
        reload.kind = LayerKind::Conv;
        // Originals + transposed copies, streamed and programmed.
        const double weightBits =
            2.0 * double(net.totalWeights()) * cfg_.weightBits;
        const double bytes = weightBits / 8.0;
        reload.stats.add("count.dram.bytes", bytes);
        reload.stats.add("energy.dram.weights",
                         cfg_.dram.accessEnergy(bytes));
        reload.stats.add("energy.array.write",
                         weightBits * cfg_.device.avgWriteEnergy());
        reload.latency = cfg_.dram.streamTime(bytes);
        run.layers.push_back(std::move(reload));
        run.latency += run.layers.back().latency;
    }

    // Images pipeline through the three passes at the unbalanced
    // slowest stage.
    run.latency += fill + double(batchSize - 1) * passes * slowest;
    run.staticEnergy = idlePower_ * run.latency;
    return run;
}

} // namespace baseline
} // namespace inca
