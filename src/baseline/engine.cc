#include "baseline/engine.hh"

#include "arch/power.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "ir/lower.hh"

namespace inca {
namespace baseline {

using arch::Phase;
using arch::RunCost;

namespace {

/** Whole-run evaluations (one network, phase, batch). */
EvalCache<RunCost> &
wsRunCache()
{
    static EvalCache<RunCost> *c = new EvalCache<RunCost>("ws.run");
    return *c;
}

/** Wall clock of one cached whole-run evaluation. */
metrics::Histogram &
runEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.run_eval_us");
    return *h;
}

} // namespace

BaselineEngine::BaselineEngine(arch::BaselineConfig cfg)
    : cfg_(std::move(cfg)), idlePower_(arch::baselineIdlePower(cfg_))
{
    arch::appendKey(cfgKey_, cfg_);
}

RunCost
BaselineEngine::inference(const nn::NetworkDesc &net,
                          int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("ws.inference ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-inference");
    nn::appendKey(key, net);
    key.add(batchSize);
    return wsRunCache().getOrCompute(key, [&] {
        return ir::analyticWalk(
            ir::lowerWs(cfg_, net, Phase::Inference, batchSize));
    });
}

RunCost
BaselineEngine::training(const nn::NetworkDesc &net, int batchSize) const
{
    inca_assert(batchSize > 0, "batch size must be positive");
    trace::Span span(trace::spanName("ws.training ", net.name));
    metrics::ScopedTimer timer(runEvalHistogram());
    CacheKey key = cfgKey_;
    key.add("run-training");
    nn::appendKey(key, net);
    key.add(batchSize);
    return wsRunCache().getOrCompute(key, [&] {
        return ir::analyticWalk(
            ir::lowerWs(cfg_, net, Phase::Training, batchSize));
    });
}

} // namespace baseline
} // namespace inca
