/**
 * @file
 * Functional WS training context (paper Limitation 2, demonstrated).
 *
 * PipeLayer-style in-situ training needs the error backpropagation
 * delta * W^T as a crossbar operation -- but a WS crossbar's columns
 * accumulate along the unrolled-kernel rows, so the transposed
 * operation needs the kernels laid out in a DIFFERENT disposition:
 * a second, separately programmed set of crossbars holding W^T. This
 * class stages both copies, executes forward and backward on the
 * bit-accurate crossbar model, and exposes the array count -- the
 * "tremendous extra RRAMs" the paper charges WS with, which INCA
 * avoids by re-reading the same weight buffer bytes in a different
 * order.
 */

#ifndef INCA_BASELINE_TRAINING_HH
#define INCA_BASELINE_TRAINING_HH

#include <cstdint>

#include "baseline/crossbar.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace inca {
namespace baseline {

/** One conv layer's WS training resources (W and W^T crossbars). */
class WsTrainingContext
{
  public:
    /**
     * Stage the layer: program @p w [F, C, K, K] (integer-valued,
     * signed weight-bits) into the forward crossbars and its
     * rotated/transposed counterpart into the backward crossbars.
     *
     * @param fwdPad the forward convolution's padding (stride 1)
     */
    WsTrainingContext(tensor::Tensor w, int fwdPad,
                      WsFunctionalOptions opts = {});

    /** Forward convolution through the W crossbars. */
    tensor::Tensor forward(const tensor::Tensor &x) const;

    /**
     * Error backpropagation through the W^T crossbars; must equal
     * tensor::conv2dInputGrad of the forward convolution.
     *
     * @param dy errors [B, F, OH, OW] (non-negative integer encoding:
     *        callers split signed errors into positive/negative
     *        passes, as PipeLayer's two-phase scheme does)
     */
    tensor::Tensor errorBackprop(const tensor::Tensor &dy) const;

    /** Crossbars programmed for the forward weights. */
    std::int64_t forwardArrays() const;

    /** EXTRA crossbars programmed for the transposed copy. */
    std::int64_t transposedArrays() const;

    /** Total crossbars this one layer pins for training. */
    std::int64_t
    totalArrays() const
    {
        return forwardArrays() + transposedArrays();
    }

  private:
    std::int64_t arraysFor(std::int64_t rows, std::int64_t kernels)
        const;

    tensor::Tensor w_;  ///< forward kernels
    tensor::Tensor wt_; ///< rotated, channel-transposed kernels
    int fwdPad_;
    WsFunctionalOptions opts_;
    WsFunctional engine_;
};

/**
 * Split a signed integer tensor into (positive, negative-magnitude)
 * halves: t == pos - neg with both halves non-negative. WS hardware
 * streams signed errors as two unsigned passes.
 */
std::pair<tensor::Tensor, tensor::Tensor> splitSigned(
    const tensor::Tensor &t);

} // namespace baseline
} // namespace inca

#endif // INCA_BASELINE_TRAINING_HH
