/**
 * @file
 * Functional model of the WS baseline's 1T1R crossbars.
 *
 * Kernels are unrolled ISAAC-style: one kernel occupies
 * K_H * K_W * C rows and weight_bits 1-bit columns (two's complement,
 * MSB column negative). Input windows stream bit-serially over the
 * rows; each column's current is the popcount of (input bit AND cell
 * bit), quantized by the 8-bit ADC, and the shift-accumulators
 * reassemble the multi-bit dot products. Row tiles of 128 add
 * digitally. The result must match the im2col + GEMM reference
 * exactly, which the integration tests enforce.
 */

#ifndef INCA_BASELINE_CROSSBAR_HH
#define INCA_BASELINE_CROSSBAR_HH

#include <cstdint>
#include <vector>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace inca {
namespace baseline {

/** One rows x cols binary crossbar. */
class WsCrossbar
{
  public:
    WsCrossbar(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Program one cell. */
    void program(int row, int col, bool bit);

    /** Read one cell back (verification). */
    bool cell(int row, int col) const;

    /**
     * Drive the rows with 1-bit inputs and return each column's
     * accumulated current (popcount), quantized by an @p adcBits ADC.
     */
    std::vector<int>
    matvecBits(const std::vector<std::uint8_t> &rowBits,
               int adcBits) const;

    /**
     * Inject a stuck-at fault: the cell permanently reads @p value
     * regardless of programming (forming failures / endurance
     * wear-out), mirroring core::BitPlane's fault semantics so the
     * reliability subsystem treats both arrays uniformly.
     */
    void injectStuckAt(int row, int col, bool value);

    /** Remove all injected faults. */
    void clearFaults();

    /** Number of faulty cells. */
    int faultCount() const { return faultCount_; }

  private:
    /** The value the sense path sees (fault-aware). */
    bool effectiveCell(std::size_t idx) const;

    int rows_, cols_;
    std::vector<std::uint8_t> cells_;
    std::vector<std::int8_t> faults_; ///< -1 none, 0/1 stuck value
    int faultCount_ = 0;
};

/** Functional-model configuration for the WS path. */
struct WsFunctionalOptions
{
    int arraySize = 128;    ///< crossbar side
    int activationBits = 8; ///< input resolution (bit-serial streams)
    int weightBits = 8;     ///< weight resolution (bit-sliced columns)
    int adcBits = 8;        ///< column conversion resolution
};

/** Bit-accurate WS (unrolled / GEMM) layer executor. */
class WsFunctional
{
  public:
    explicit WsFunctional(WsFunctionalOptions opts = {});

    const WsFunctionalOptions &options() const { return opts_; }

    /**
     * Convolution through programmed crossbars.
     *
     * @param x integer activations [B, C, H, W], 0 <= v < 2^aBits
     * @param w integer kernels [F, C, KH, KW], signed weightBits
     */
    tensor::Tensor conv2d(const tensor::Tensor &x,
                          const tensor::Tensor &w,
                          const tensor::ConvSpec &spec = {}) const;

    /** Fully connected layer: x [B, D] by w [D, F]. */
    tensor::Tensor fc(const tensor::Tensor &x,
                      const tensor::Tensor &w) const;

  private:
    WsFunctionalOptions opts_;
};

} // namespace baseline
} // namespace inca

#endif // INCA_BASELINE_CROSSBAR_HH
