#include "baseline/training.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace inca {
namespace baseline {

using tensor::ConvSpec;
using tensor::Tensor;

WsTrainingContext::WsTrainingContext(Tensor w, int fwdPad,
                                     WsFunctionalOptions opts)
    : w_(std::move(w)), fwdPad_(fwdPad), opts_(opts), engine_(opts)
{
    inca_assert(w_.rank() == 4, "conv weights must be 4-D");
    const std::int64_t f = w_.dim(0), c = w_.dim(1), kh = w_.dim(2),
                       kw = w_.dim(3);
    // The transposed copy: in/out channels swapped, kernels rotated
    // 180 degrees -- a different element disposition that must be
    // programmed into its own crossbars (Limitation 2).
    wt_ = Tensor({c, f, kh, kw});
    for (std::int64_t of = 0; of < f; ++of)
        for (std::int64_t ic = 0; ic < c; ++ic)
            for (std::int64_t kr = 0; kr < kh; ++kr)
                for (std::int64_t kc = 0; kc < kw; ++kc)
                    wt_.at(ic, of, kr, kc) =
                        w_.at(of, ic, kh - 1 - kr, kw - 1 - kc);
}

Tensor
WsTrainingContext::forward(const Tensor &x) const
{
    return engine_.conv2d(x, w_, ConvSpec{1, fwdPad_});
}

Tensor
WsTrainingContext::errorBackprop(const Tensor &dy) const
{
    const int kh = int(w_.dim(2));
    // Full padding turns the W^T convolution into conv2dInputGrad for
    // the stride-1 forward.
    return engine_.conv2d(dy, wt_, ConvSpec{1, kh - 1 - fwdPad_});
}

std::int64_t
WsTrainingContext::arraysFor(std::int64_t rows,
                             std::int64_t kernels) const
{
    const auto s = std::uint64_t(opts_.arraySize);
    const auto cols =
        std::uint64_t(kernels) * std::uint64_t(opts_.weightBits);
    return std::int64_t(ceilDiv(std::uint64_t(rows), s) *
                        ceilDiv(cols, s));
}

std::int64_t
WsTrainingContext::forwardArrays() const
{
    return arraysFor(w_.dim(1) * w_.dim(2) * w_.dim(3), w_.dim(0));
}

std::int64_t
WsTrainingContext::transposedArrays() const
{
    return arraysFor(wt_.dim(1) * wt_.dim(2) * wt_.dim(3),
                     wt_.dim(0));
}

std::pair<Tensor, Tensor>
splitSigned(const Tensor &t)
{
    Tensor pos(t.shape()), neg(t.shape());
    for (std::int64_t i = 0; i < t.size(); ++i) {
        if (t[i] >= 0.0f)
            pos[i] = t[i];
        else
            neg[i] = -t[i];
    }
    return {std::move(pos), std::move(neg)};
}

} // namespace baseline
} // namespace inca
