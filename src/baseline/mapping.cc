#include "baseline/mapping.hh"

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/units.hh"

namespace inca {
namespace baseline {

WsMapping
mapLayer(const nn::LayerDesc &layer, const arch::BaselineConfig &cfg)
{
    inca_assert(layer.isConvLike(), "mapLayer on non-conv layer %s",
                layer.name.c_str());
    const auto s = std::uint64_t(cfg.subarraySize);
    WsMapping m;
    m.windows = layer.outH * layer.outW;

    if (layer.kind == nn::LayerKind::Depthwise) {
        // One tiny kernel column group per channel; channels cannot
        // accumulate together, so each needs its own rows.
        m.usedRows = std::int64_t(layer.kh) * layer.kw;
        m.usedCols = cfg.weightBits;
        m.rowTiles = std::int64_t(
            ceilDiv(std::uint64_t(m.usedRows), s));
        m.colTiles = std::int64_t(
            ceilDiv(std::uint64_t(m.usedCols), s));
        m.channelGroups = layer.inC;
        return m;
    }

    m.usedRows = layer.accumDepth();
    m.usedCols = std::int64_t(cfg.weightBits) * layer.outC;
    m.rowTiles = std::int64_t(ceilDiv(std::uint64_t(m.usedRows), s));
    m.colTiles = std::int64_t(ceilDiv(std::uint64_t(m.usedCols), s));
    m.channelGroups = 1;
    return m;
}

std::int64_t
arraysForNetwork(const nn::NetworkDesc &net,
                 const arch::BaselineConfig &cfg)
{
    static EvalCache<std::int64_t> *cache =
        new EvalCache<std::int64_t>("ws.arrays");
    CacheKey key;
    key.add("arrays");
    nn::appendKey(key, net);
    arch::appendKey(key, cfg);
    return cache->getOrCompute(key, [&] {
        std::int64_t total = 0;
        for (const auto &layer : net.layers) {
            if (layer.isConvLike())
                total += mapLayer(layer, cfg).arrays();
        }
        return total;
    });
}

} // namespace baseline
} // namespace inca
