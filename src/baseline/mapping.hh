/**
 * @file
 * Weight-stationary (unrolled / GEMM) crossbar mapping.
 *
 * The baseline follows ISAAC [42]: kernels are unrolled into crossbar
 * columns -- K_H * K_W * C rows per kernel, weight_bits 1-bit columns
 * per output channel -- and tiled over 128 x 128 arrays. Depthwise
 * kernels occupy only K_H * K_W rows of their columns and cannot share
 * accumulation columns across channels, which is the coarse-grained
 * utilization collapse of Limitation 3.
 */

#ifndef INCA_BASELINE_MAPPING_HH
#define INCA_BASELINE_MAPPING_HH

#include <cstdint>

#include "arch/config.hh"
#include "nn/network.hh"

namespace inca {
namespace baseline {

/** Geometry of one layer unrolled onto WS crossbars. */
struct WsMapping
{
    /** Rows one unrolled kernel occupies (accumulation depth). */
    std::int64_t usedRows = 0;
    /** Bit-sliced columns the layer's kernels occupy. */
    std::int64_t usedCols = 0;
    /** Vertical array tiles (partial sums joined by adders). */
    std::int64_t rowTiles = 0;
    /** Horizontal array tiles. */
    std::int64_t colTiles = 0;
    /** Independent per-channel array groups (depthwise only). */
    std::int64_t channelGroups = 1;
    /** Kernel window positions per output channel. */
    std::int64_t windows = 0;

    /** Crossbars the layer occupies. */
    std::int64_t
    arrays() const
    {
        return rowTiles * colTiles * channelGroups;
    }
};

/** Map @p layer onto @p cfg. Only valid for conv-like layers. */
WsMapping mapLayer(const nn::LayerDesc &layer,
                   const arch::BaselineConfig &cfg);

/** Total crossbars a network's weights occupy (with replication 1). */
std::int64_t arraysForNetwork(const nn::NetworkDesc &net,
                              const arch::BaselineConfig &cfg);

} // namespace baseline
} // namespace inca

#endif // INCA_BASELINE_MAPPING_HH
