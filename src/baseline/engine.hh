/**
 * @file
 * Weight-stationary baseline analytic engine.
 *
 * Models the paper's baseline: an ISAAC-style [42] 2D 128 x 128
 * crossbar accelerator with pipelined inference, extended with
 * PipeLayer-style [48] in-situ training. Since the IR refactor the
 * per-layer math lives in the shared lowering pass (ir/lower.hh);
 * this engine lowers the network and folds the instruction stream
 * back through ir::analyticWalk(). Model highlights:
 *
 *  - weights stay in 1T1R crossbars; every window's inputs are fetched
 *    from buffers (Eq. 5 per output element) and every output is saved
 *    back (Eq. 6) to keep the pipeline fed -- Limitation 1;
 *  - training keeps a transposed-weight copy in extra crossbars and
 *    stores activations and errors in RRAM -- Limitation 2;
 *  - 8-bit ADCs convert every column of every active array each input
 *    bit cycle, and whole crossbars stay driven even when depthwise
 *    kernels use 9 of 128 rows -- Limitations 3 and 4's hardware cost;
 *  - images in a batch pipeline through layers in inference, but the
 *    forward/backward dependency serializes them in training, which is
 *    where INCA's batch parallelism wins big.
 */

#ifndef INCA_BASELINE_ENGINE_HH
#define INCA_BASELINE_ENGINE_HH

#include "arch/config.hh"
#include "arch/cost.hh"
#include "common/cache.hh"
#include "nn/network.hh"

namespace inca {
namespace baseline {

/** Analytic simulator for the WS baseline. */
class BaselineEngine
{
  public:
    explicit BaselineEngine(arch::BaselineConfig cfg);

    /** Simulate one inference batch (layer-pipelined). */
    arch::RunCost inference(const nn::NetworkDesc &net,
                            int batchSize) const;

    /** Simulate one training iteration (per-image serialized). */
    arch::RunCost training(const nn::NetworkDesc &net,
                           int batchSize) const;

    const arch::BaselineConfig &config() const { return cfg_; }

    /** Chip idle power used for static energy. */
    Watts idlePower() const { return idlePower_; }

  private:
    arch::BaselineConfig cfg_;
    Watts idlePower_;
    CacheKey cfgKey_; ///< canonical key prefix for cfg_
};

} // namespace baseline
} // namespace inca

#endif // INCA_BASELINE_ENGINE_HH
