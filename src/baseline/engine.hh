/**
 * @file
 * Weight-stationary baseline analytic engine.
 *
 * Models the paper's baseline: an ISAAC-style [42] 2D 128 x 128
 * crossbar accelerator with pipelined inference, extended with
 * PipeLayer-style [48] in-situ training:
 *
 *  - weights stay in 1T1R crossbars; every window's inputs are fetched
 *    from buffers (Eq. 5 per output element) and every output is saved
 *    back (Eq. 6) to keep the pipeline fed -- Limitation 1;
 *  - training keeps a transposed-weight copy in extra crossbars and
 *    stores activations and errors in RRAM -- Limitation 2;
 *  - 8-bit ADCs convert every column of every active array each input
 *    bit cycle, and whole crossbars stay driven even when depthwise
 *    kernels use 9 of 128 rows -- Limitations 3 and 4's hardware cost;
 *  - images in a batch pipeline through layers in inference, but the
 *    forward/backward dependency serializes them in training, which is
 *    where INCA's batch parallelism wins big.
 */

#ifndef INCA_BASELINE_ENGINE_HH
#define INCA_BASELINE_ENGINE_HH

#include "arch/config.hh"
#include "arch/cost.hh"
#include "common/cache.hh"
#include "nn/network.hh"

namespace inca {
namespace baseline {

/** Analytic simulator for the WS baseline. */
class BaselineEngine
{
  public:
    explicit BaselineEngine(arch::BaselineConfig cfg);

    /** Simulate one inference batch (layer-pipelined). */
    arch::RunCost inference(const nn::NetworkDesc &net,
                            int batchSize) const;

    /** Simulate one training iteration (per-image serialized). */
    arch::RunCost training(const nn::NetworkDesc &net,
                           int batchSize) const;

    const arch::BaselineConfig &config() const { return cfg_; }

    /** Chip idle power used for static energy. */
    Watts idlePower() const { return idlePower_; }

  private:
    /** True when the weights do not fit the on-chip RRAM capacity. */
    bool weightsReloaded(const nn::NetworkDesc &net,
                         bool training) const;

    /** Buffer bytes a layer's pipeline stage can claim. */
    double bufferShare(const nn::NetworkDesc &net,
                       const nn::LayerDesc &layer) const;

    // Cached per-layer entry points; keys exclude the layer name (the
    // forward key embeds the layer's bufferShare to capture the
    // network dependence), and the wrappers restore presentation
    // fields on the returned copy.
    arch::LayerCost forwardLayer(const nn::NetworkDesc &net,
                                 const nn::LayerDesc &layer,
                                 int batchSize) const;
    arch::LayerCost auxLayer(const nn::LayerDesc &layer,
                             int batchSize) const;

    // Uncached analytic bodies.
    arch::LayerCost computeForwardLayer(const nn::NetworkDesc &net,
                                        const nn::LayerDesc &layer,
                                        int batchSize) const;
    arch::LayerCost computeAuxLayer(const nn::LayerDesc &layer,
                                    int batchSize) const;
    arch::RunCost computeInference(const nn::NetworkDesc &net,
                                   int batchSize) const;
    arch::RunCost computeTraining(const nn::NetworkDesc &net,
                                  int batchSize) const;

    arch::BaselineConfig cfg_;
    Watts idlePower_;
    CacheKey cfgKey_; ///< canonical key prefix for cfg_
};

} // namespace baseline
} // namespace inca

#endif // INCA_BASELINE_ENGINE_HH
