#include "baseline/crossbar.hh"

#include <cmath>

#include "common/logging.hh"

namespace inca {
namespace baseline {

using tensor::ConvSpec;
using tensor::Tensor;

WsCrossbar::WsCrossbar(int rows, int cols)
    : rows_(rows), cols_(cols), cells_(size_t(rows) * cols, 0),
      faults_(size_t(rows) * cols, -1)
{
    inca_assert(rows > 0 && cols > 0, "bad crossbar geometry");
}

bool
WsCrossbar::effectiveCell(size_t idx) const
{
    const std::int8_t fault = faults_[idx];
    if (fault >= 0)
        return fault != 0;
    return cells_[idx] != 0;
}

void
WsCrossbar::injectStuckAt(int row, int col, bool value)
{
    // Fault registration takes user-supplied coordinates (campaign
    // configs, scripts), so out-of-range is a configuration error,
    // not a simulator bug.
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
        fatal("fault injection at (%d, %d) is outside the %dx%d "
              "crossbar; valid rows are 0..%d and columns 0..%d",
              row, col, rows_, cols_, rows_ - 1, cols_ - 1);
    std::int8_t &slot = faults_[size_t(row) * cols_ + col];
    if (slot < 0)
        ++faultCount_;
    slot = value ? 1 : 0;
}

void
WsCrossbar::clearFaults()
{
    for (auto &f : faults_)
        f = -1;
    faultCount_ = 0;
}

void
WsCrossbar::program(int row, int col, bool bit)
{
    inca_assert(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "cell (%d, %d) outside %dx%d crossbar", row, col, rows_,
                cols_);
    cells_[size_t(row) * cols_ + col] = bit ? 1 : 0;
}

bool
WsCrossbar::cell(int row, int col) const
{
    inca_assert(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "cell (%d, %d) outside %dx%d crossbar", row, col, rows_,
                cols_);
    return effectiveCell(size_t(row) * cols_ + col);
}

std::vector<int>
WsCrossbar::matvecBits(const std::vector<std::uint8_t> &rowBits,
                       int adcBits) const
{
    inca_assert(int(rowBits.size()) == rows_,
                "input arity %zu != rows %d", rowBits.size(), rows_);
    const int maxCode = (1 << adcBits) - 1;
    std::vector<int> out(size_t(cols_), 0);
    for (int r = 0; r < rows_; ++r) {
        if (!rowBits[size_t(r)])
            continue;
        const size_t base = size_t(r) * cols_;
        if (faultCount_ == 0) {
            // Fault-free fast path (the functional model's hot loop).
            const std::uint8_t *row = &cells_[base];
            for (int c = 0; c < cols_; ++c)
                out[size_t(c)] += row[c];
        } else {
            for (int c = 0; c < cols_; ++c)
                out[size_t(c)] += effectiveCell(base + c) ? 1 : 0;
        }
    }
    for (auto &v : out)
        v = std::min(v, maxCode);
    return out;
}

WsFunctional::WsFunctional(WsFunctionalOptions opts) : opts_(opts)
{
    inca_assert(opts_.arraySize > 0, "bad array size");
}

namespace {

/**
 * Program the unrolled kernel matrix [R rows x F kernels] into row
 * tiles of crossbars, weightBits bit columns per kernel.
 */
std::vector<WsCrossbar>
programKernels(const Tensor &wm, const WsFunctionalOptions &o)
{
    const int rows = int(wm.dim(0));
    const int kernels = int(wm.dim(1));
    const int cols = kernels * o.weightBits;
    const int s = o.arraySize;
    const int rowTiles = (rows + s - 1) / s;
    const int colTiles = (cols + s - 1) / s;
    const int lo = -(1 << (o.weightBits - 1));
    const int hi = (1 << (o.weightBits - 1)) - 1;
    const std::uint32_t mask = (1u << o.weightBits) - 1u;

    std::vector<WsCrossbar> arrays(size_t(rowTiles) * colTiles,
                                   WsCrossbar(s, s));
    for (int r = 0; r < rows; ++r) {
        for (int f = 0; f < kernels; ++f) {
            const float v = wm.at(r, f);
            inca_assert(v >= float(lo) && v <= float(hi) &&
                            v == std::floor(v),
                        "weight %f not an integer in [%d, %d]",
                        double(v), lo, hi);
            const auto enc = std::uint32_t(std::int32_t(v)) & mask;
            for (int k = 0; k < o.weightBits; ++k) {
                const int col = f * o.weightBits + k;
                const int tile =
                    (r / s) * colTiles + (col / s);
                arrays[size_t(tile)].program(r % s, col % s,
                                             (enc >> k) & 1u);
            }
        }
    }
    return arrays;
}

/**
 * Stream one unrolled input window (unsigned ints) through the
 * programmed arrays and return the F dot products.
 */
std::vector<std::int64_t>
streamWindow(const std::vector<WsCrossbar> &arrays,
             const std::vector<std::uint32_t> &window, int kernels,
             const WsFunctionalOptions &o)
{
    const int rows = int(window.size());
    const int cols = kernels * o.weightBits;
    const int s = o.arraySize;
    const int rowTiles = (rows + s - 1) / s;
    const int colTiles = (cols + s - 1) / s;

    std::vector<std::int64_t> acc(size_t(kernels), 0);
    for (int a = 0; a < o.activationBits; ++a) {
        for (int rt = 0; rt < rowTiles; ++rt) {
            std::vector<std::uint8_t> bits(size_t(s), 0);
            const int base = rt * s;
            for (int r = 0; r < s && base + r < rows; ++r)
                bits[size_t(r)] =
                    (window[size_t(base + r)] >> a) & 1u;
            for (int ct = 0; ct < colTiles; ++ct) {
                const auto codes =
                    arrays[size_t(rt) * colTiles + ct].matvecBits(
                        bits, o.adcBits);
                for (int c = 0; c < s; ++c) {
                    const int col = ct * s + c;
                    if (col >= cols)
                        break;
                    const int f = col / o.weightBits;
                    const int k = col % o.weightBits;
                    const std::int64_t wScale =
                        (k == o.weightBits - 1)
                            ? -(std::int64_t(1) << k)
                            : (std::int64_t(1) << k);
                    acc[size_t(f)] += wScale *
                                      (std::int64_t(1) << a) *
                                      codes[size_t(c)];
                }
            }
        }
    }
    return acc;
}

std::uint32_t
encodeUnsigned(float v, int bits)
{
    const float hi = float((1u << bits) - 1u);
    inca_assert(v >= 0.0f && v <= hi && v == std::floor(v),
                "activation %f not an integer in [0, %f]", double(v),
                double(hi));
    return std::uint32_t(v);
}

} // namespace

Tensor
WsFunctional::conv2d(const Tensor &x, const Tensor &w,
                     const ConvSpec &spec) const
{
    inca_assert(x.rank() == 4 && w.rank() == 4,
                "conv2d expects 4-D x and w");
    const int b = int(x.dim(0)), c = int(x.dim(1)), h = int(x.dim(2)),
              wd = int(x.dim(3));
    const int f = int(w.dim(0)), kh = int(w.dim(2)), kw = int(w.dim(3));
    inca_assert(int(w.dim(1)) == c, "channel mismatch");
    const auto oh = tensor::convOutDim(h, kh, spec);
    const auto ow = tensor::convOutDim(wd, kw, spec);

    // Unroll kernels into the [C*KH*KW, F] matrix WS crossbars hold.
    Tensor wm({std::int64_t(c) * kh * kw, f});
    for (int of = 0; of < f; ++of) {
        int r = 0;
        for (int ic = 0; ic < c; ++ic)
            for (int kr = 0; kr < kh; ++kr)
                for (int kc = 0; kc < kw; ++kc, ++r)
                    wm.at(r, of) = w.at(of, ic, kr, kc);
    }
    const auto arrays = programKernels(wm, opts_);

    Tensor y({b, f, oh, ow});
    std::vector<std::uint32_t> window(size_t(c) * kh * kw);
    for (int img = 0; img < b; ++img) {
        for (std::int64_t orow = 0; orow < oh; ++orow) {
            for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                int r = 0;
                for (int ic = 0; ic < c; ++ic) {
                    for (int kr = 0; kr < kh; ++kr) {
                        for (int kc = 0; kc < kw; ++kc, ++r) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            window[size_t(r)] =
                                (ir < 0 || ir >= h || icl < 0 ||
                                 icl >= wd)
                                    ? 0u
                                    : encodeUnsigned(
                                          x.at(img, ic, ir, icl),
                                          opts_.activationBits);
                        }
                    }
                }
                const auto acc =
                    streamWindow(arrays, window, f, opts_);
                for (int of = 0; of < f; ++of)
                    y.at(img, of, orow, ocol) = float(acc[size_t(of)]);
            }
        }
    }
    return y;
}

Tensor
WsFunctional::fc(const Tensor &x, const Tensor &w) const
{
    inca_assert(x.rank() == 2 && w.rank() == 2, "fc expects rank 2");
    const int b = int(x.dim(0)), d = int(x.dim(1)), f = int(w.dim(1));
    inca_assert(int(w.dim(0)) == d, "fc inner dims differ");

    const auto arrays = programKernels(w, opts_);
    Tensor y({b, f});
    std::vector<std::uint32_t> window(static_cast<size_t>(d));
    for (int img = 0; img < b; ++img) {
        for (int r = 0; r < d; ++r)
            window[size_t(r)] =
                encodeUnsigned(x.at(img, r), opts_.activationBits);
        const auto acc = streamWindow(arrays, window, f, opts_);
        for (int of = 0; of < f; ++of)
            y.at(img, of) = float(acc[size_t(of)]);
    }
    return y;
}

} // namespace baseline
} // namespace inca
