/**
 * @file
 * Bottleneck analytics over an event-backend schedule: critical-path
 * extraction, per-unit occupancy, per-instruction slack, and what-if
 * sensitivity. Everything here is a pure function of the lowered
 * program and its TimedRun, so every report is byte-identical across
 * thread counts, cache settings, and runs.
 *
 * Critical path. The schedule computes start(i) as the max dependency
 * finish, so for every instruction there is a dependency whose finish
 * *equals* its start -- the gate. Walking gates back from the exit
 * sync (ties broken by smallest instruction index, so the path is
 * deterministic) yields a chain whose segments tile [0, makespan]
 * contiguously: start(step j) is bit-equal to finish(step j-1).
 * Re-folding the step durations in order therefore reproduces the
 * makespan bit-exactly -- the same IEEE additions the scheduler did.
 *
 * Shares. Per-unit and per-layer shares of the makespan are the
 * telescoped prefix-time differences of the path, accumulated with an
 * error-free expansion (ExactSum): each step contributes its finish
 * and minus-its-start, both exact, so the shares sum to the makespan
 * with 0 ULP error by construction. Each share is reported as a
 * double-double (hi + lo); summing every unit's hi and lo with
 * math.fsum / ExactSum and rounding recovers the makespan exactly
 * (tests and CI assert this).
 *
 * Slack. Total slack -- how late an instruction could start without
 * growing the makespan -- is computed with the gap recursion
 * slack(i) = min over successors s of (start(s) - finish(i)) +
 * slack(s), which is a sum of non-negative terms: exactly zero along
 * the critical path (every gate link has a zero gap) and >= 0
 * everywhere else, with no -ULP artifacts a backward latest-finish
 * recursion would produce. Posted work already past the makespan
 * clamps to zero (it cannot delay the exit at all; the overhang
 * column reports it instead).
 *
 * What-if. Sensitivity re-executes the program with one unit's
 * durations scaled, purely at the schedule level (lowered stats and
 * energies untouched): the "speedup-if-fixed" table. A factor of 1.0
 * multiplies every duration by exactly 1.0 and is therefore a
 * bit-identical no-op.
 */

#ifndef INCA_EVENT_ANALYSIS_HH
#define INCA_EVENT_ANALYSIS_HH

#include <string>
#include <utility>
#include <vector>

#include "event/event.hh"
#include "ir/ir.hh"

namespace inca {
namespace event {

/**
 * Error-free accumulator (a Shewchuk/fsum-style expansion): add() is
 * exact for any sequence of finite doubles, round() returns the
 * correctly-rounded double of the exact sum, and pair() returns the
 * double-double (hi = round(), lo = round(exact - hi)). Used for the
 * 0-ULP share-sum contract; exposed for tests and CI cross-checks.
 */
class ExactSum
{
  public:
    /** Add @p x exactly (no rounding error is ever discarded). */
    void add(double x);
    /** Correctly-rounded double of the exact sum so far. */
    double round() const;
    /** (hi, lo) double-double: hi = round(), lo = round(sum - hi). */
    std::pair<double, double> pair() const;

  private:
    /** Non-overlapping partials, increasing magnitude (fsum's). */
    std::vector<double> partials_;
};

/** One step of the critical path, in start-time order. */
struct PathStep
{
    int instr = 0;     ///< instruction index
    Seconds start = 0.0;
    Seconds finish = 0.0;
    Seconds duration = 0.0; ///< lowered duration (refolds to makespan)
};

/** Exact share of the makespan as a double-double. */
struct Share
{
    double hi = 0.0;
    double lo = 0.0;
    double total() const { return hi + lo; }
};

/** Per-unit occupancy + critical-path attribution (one report row). */
struct UnitReport
{
    ir::Unit unit = ir::Unit::Dram;
    int intervals = 0;    ///< busy intervals recorded on the unit
    Seconds busy = 0.0;   ///< sum of interval durations (work-seconds;
                          ///< can exceed the makespan when posted
                          ///< work overlaps or overhangs)
    Seconds coverage = 0.0;   ///< union of intervals within [0, makespan]
    Seconds idle = 0.0;       ///< makespan - coverage (clamped at 0)
    Seconds overhang = 0.0;   ///< union of interval time past the
                              ///< makespan (posted off-critical work)
    Seconds largestGap = 0.0; ///< widest idle stretch in [0, makespan]
    double utilization = 0.0; ///< coverage / makespan (overhang never
                              ///< inflates the denominator)
    Seconds maxSlack = 0.0;   ///< largest per-instruction slack
    Share criticalShare;      ///< exact share of the critical path
    double criticalFraction = 0.0; ///< criticalShare / makespan
};

/** Per-layer (span) share of the critical path. */
struct LayerShare
{
    std::string layer;
    Share share;
    double fraction = 0.0;
};

/** One row of the what-if sensitivity table. */
struct WhatIfEntry
{
    ir::Unit unit = ir::Unit::Dram;
    double factor = 1.0;
    Seconds makespan = 0.0; ///< makespan of the scaled schedule
    Seconds delta = 0.0;    ///< base makespan - scaled makespan
    double speedup = 1.0;   ///< base makespan / scaled makespan
};

/** Everything the analysis layer extracts from one schedule. */
struct Report
{
    Seconds makespan = 0.0;
    std::vector<PathStep> path;       ///< source -> exit sync
    std::vector<UnitReport> units;    ///< units the program uses, in
                                      ///< ir::Unit order
    std::vector<LayerShare> layers;   ///< spans the path visits, in
                                      ///< program span order
    std::vector<Seconds> slack;       ///< aligned with program.instrs
    std::vector<WhatIfEntry> whatIf;  ///< empty when not requested
    ir::Unit bottleneck = ir::Unit::Dram; ///< largest critical share
    double bottleneckFraction = 0.0;
};

/** What-if knobs for analyze(). */
struct AnalyzeOptions
{
    /** Run the sensitivity sweep (one re-execution per entry). */
    bool runWhatIf = true;
    /**
     * (unit, factor) pairs to sweep; when empty, every non-ctrl unit
     * the program uses at factor 0.5.
     */
    std::vector<std::pair<ir::Unit, double>> whatIf;
};

/** Analyze @p t, the schedule execute() produced for @p p. */
Report analyze(const ir::Program &p, const TimedRun &t,
               const AnalyzeOptions &opts = {});

/**
 * Copy of @p p with every instruction on @p unit scaled to
 * duration * factor -- stats, deps, and spans untouched. The
 * what-if primitive; factor must be finite and > 0.
 */
ir::Program scaleUnit(const ir::Program &p, ir::Unit unit,
                      double factor);

/**
 * Publish the report to the metrics registry: event.makespan_us and,
 * per unit, event.unit.<name>.{busy_us, idle_us, overhang_us,
 * utilization, critical_share} gauges.
 */
void publishMetrics(const Report &r);

/** Human-readable bottleneck report (the timeline --report text). */
std::string reportText(const ir::Program &p, const Report &r);

/**
 * Strict JSON report with the standard provenance manifest. Numbers
 * are %.17g, so every double round-trips; CI re-sums the shares with
 * math.fsum and compares against makespan_s for bit equality.
 */
std::string reportJson(const ir::Program &p, const Report &r);

/**
 * RFC-4180 CSV, one row per unit, same schema family as the
 * per-layer run export (snake_case headers, leading name column,
 * %.17g numbers).
 */
std::string reportCsv(const ir::Program &p, const Report &r);

} // namespace event
} // namespace inca

#endif // INCA_EVENT_ANALYSIS_HH
