/**
 * @file
 * Event-driven execution of lowered IR programs.
 *
 * A deterministic discrete-event simulator: each instruction becomes
 * ready when all its dependencies have finished, runs for its lowered
 * duration on its unit, and posts a completion event; a priority
 * queue ordered by (finish time, instruction index) drains the
 * program. All timing flows through the explicit dependencies the
 * lowering emitted -- units impose no implicit serialization (the
 * analytic cost model treats each unit as pipelined/abundant, and the
 * bit-exactness contract with the analytic walk requires the event
 * schedule to fold the very same IEEE additions). Per-unit busy
 * intervals are recorded from the schedule for occupancy reporting
 * and trace export; intervals of off-critical (posted) work may
 * overlap and may extend past the makespan -- the analysis layer
 * (event/analysis.hh) reports that tail explicitly as per-unit
 * `overhang` seconds and never counts it toward utilization, whose
 * denominator is always the makespan.
 *
 * The makespan is the finish time of the program's exit sync. With
 * overlap-off wiring this folds to exactly the analytic engines'
 * latency (tests/test_event_backend.cc asserts 0 ULP); overlap-on
 * wiring only relaxes dependencies, so the makespan can only shrink
 * while the charged stats -- and thus dynamic energy -- are identical.
 */

#ifndef INCA_EVENT_EVENT_HH
#define INCA_EVENT_EVENT_HH

#include <string>
#include <vector>

#include "arch/cost.hh"
#include "ir/ir.hh"

namespace inca {
namespace event {

/** Scheduled start/finish of one instruction. */
struct TimedInstr
{
    Seconds start = 0.0;
    Seconds finish = 0.0;
};

/** One occupancy interval on a unit. */
struct BusyInterval
{
    int instr = 0; ///< instruction index
    Seconds start = 0.0;
    Seconds finish = 0.0;
};

/** Result of executing a program on the event backend. */
struct TimedRun
{
    /**
     * The analytic-compatible summary: per-layer costs collapsed from
     * the spans (identical to the analytic walk by construction) with
     * run latency = event makespan and static energy = idle power x
     * makespan.
     */
    arch::RunCost run;
    /** Per-instruction schedule, aligned with program.instrs. */
    std::vector<TimedInstr> schedule;
    /** Busy intervals per unit, ordered by (start, instr). */
    std::vector<std::pair<std::string, std::vector<BusyInterval>>> busy;
    /** Finish time of the exit sync. */
    Seconds makespan = 0.0;
};

/** Execute @p p. Deterministic: same program, same schedule. */
TimedRun execute(const ir::Program &p);

/**
 * Emit the schedule as a Chrome trace at simulated time (microsecond
 * granularity) when INCA_TRACE is active; no-op otherwise. Work
 * instructions become complete ('X') spans; sync instructions become
 * zero-cost instant events (the exit sync doubling as a "makespan"
 * marker); consecutive work steps of the critical path are linked
 * with flow arrows; and an "event.ready_queue" counter series tracks
 * how many work instructions are in flight at each schedule time.
 */
void emitTrace(const ir::Program &p, const TimedRun &t);

} // namespace event
} // namespace inca

#endif // INCA_EVENT_EVENT_HH
