#include "event/analysis.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/export_util.hh"
#include "common/logging.hh"
#include "common/metrics.hh"

namespace inca {
namespace event {

namespace {

constexpr int kUnitCount = int(ir::Unit::Ctrl) + 1;

std::string
num17(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Phase as the export spelling. */
const char *
phaseName(const ir::Program &p)
{
    return p.phase == arch::Phase::Training ? "training" : "inference";
}

/**
 * The gating dependency of @p i: the dep whose finish equals the
 * instruction's start (ties broken by smallest index, making the
 * path deterministic). -1 for source instructions.
 */
int
gateOf(const ir::Program &p, const TimedRun &t, int i)
{
    int gate = -1;
    for (const int d : p.instrs[std::size_t(i)].deps) {
        if (gate < 0 ||
            t.schedule[std::size_t(d)].finish >
                t.schedule[std::size_t(gate)].finish ||
            (t.schedule[std::size_t(d)].finish ==
                 t.schedule[std::size_t(gate)].finish &&
             d < gate))
            gate = d;
    }
    return gate;
}

} // namespace

void
ExactSum::add(double x)
{
    // math.fsum's partials maintenance: each two-sum is error-free,
    // and the invariant (non-overlapping partials of increasing
    // magnitude) keeps the list short and round() correct.
    std::size_t i = 0;
    for (std::size_t j = 0; j < partials_.size(); ++j) {
        double y = partials_[j];
        if (std::fabs(x) < std::fabs(y))
            std::swap(x, y);
        const double hi = x + y;
        const double lo = y - (hi - x);
        if (lo != 0.0)
            partials_[i++] = lo;
        x = hi;
    }
    partials_.resize(i);
    partials_.push_back(x);
}

double
ExactSum::round() const
{
    // math.fsum's final rounding: fold from the largest partial down
    // until one stops changing the running sum, then apply the
    // half-ulp correction using the sign of the next partial.
    std::size_t n = partials_.size();
    if (n == 0)
        return 0.0;
    double hi = partials_[--n];
    double lo = 0.0;
    while (n > 0) {
        const double x = hi;
        const double y = partials_[--n];
        hi = x + y;
        const double yr = hi - x;
        lo = y - yr;
        if (lo != 0.0)
            break;
    }
    if (n > 0 && ((lo < 0.0 && partials_[n - 1] < 0.0) ||
                  (lo > 0.0 && partials_[n - 1] > 0.0))) {
        const double y = lo * 2.0;
        const double x = hi + y;
        const double yr = x - hi;
        if (y == yr)
            hi = x;
    }
    return hi;
}

std::pair<double, double>
ExactSum::pair() const
{
    const double hi = round();
    ExactSum rest = *this;
    rest.add(-hi);
    return {hi, rest.round()};
}

ir::Program
scaleUnit(const ir::Program &p, ir::Unit unit, double factor)
{
    inca_assert(std::isfinite(factor) && factor > 0.0,
                "what-if factor %g for unit %s is not positive",
                factor, ir::unitName(unit));
    ir::Program out = p;
    for (ir::Instr &in : out.instrs)
        if (in.unit == unit)
            in.duration *= factor;
    return out;
}

Report
analyze(const ir::Program &p, const TimedRun &t,
        const AnalyzeOptions &opts)
{
    const int n = int(p.instrs.size());
    inca_assert(int(t.schedule.size()) == n,
                "schedule/program mismatch in '%s'",
                p.network.c_str());

    Report r;
    r.makespan = t.makespan;

    // --- Critical path: walk gates back from the exit sync. ---
    {
        std::vector<int> chain;
        int i = n - 1;
        while (true) {
            chain.push_back(i);
            const int gate = gateOf(p, t, i);
            if (gate < 0)
                break;
            inca_assert(t.schedule[std::size_t(gate)].finish ==
                            t.schedule[std::size_t(i)].start,
                        "gate of %d does not tile the path", i);
            i = gate;
        }
        inca_assert(t.schedule[std::size_t(chain.back())].start ==
                        0.0,
                    "critical path does not start at t=0");
        std::reverse(chain.begin(), chain.end());
        r.path.reserve(chain.size());
        for (const int idx : chain)
            r.path.push_back({idx, t.schedule[std::size_t(idx)].start,
                              t.schedule[std::size_t(idx)].finish,
                              p.instrs[std::size_t(idx)].duration});
    }

    // --- Exact shares: telescoped prefix differences. Each step
    // adds (finish, -start) to its unit's and layer's accumulator;
    // both endpoints are schedule doubles, so the grand total over
    // all accumulators is exactly finish(exit) - 0 = makespan. ---
    std::vector<int> spanOf(std::size_t(n), -1);
    for (std::size_t s = 0; s < p.spans.size(); ++s)
        for (int k = 0; k < p.spans[s].count; ++k)
            spanOf[std::size_t(p.spans[s].first + k)] = int(s);

    std::vector<ExactSum> unitSum;
    unitSum.resize(std::size_t(kUnitCount));
    std::vector<ExactSum> spanSum;
    spanSum.resize(p.spans.size());
    for (const PathStep &step : r.path) {
        const int u = int(p.instrs[std::size_t(step.instr)].unit);
        unitSum[std::size_t(u)].add(step.finish);
        unitSum[std::size_t(u)].add(-step.start);
        const int s = spanOf[std::size_t(step.instr)];
        // Only the exit sync lives outside every span; its delta is
        // exactly zero (zero duration, start == gate finish), so
        // skipping it keeps the layer total exact.
        if (s >= 0) {
            spanSum[std::size_t(s)].add(step.finish);
            spanSum[std::size_t(s)].add(-step.start);
        }
    }

    // --- Slack: gap recursion over successors, reverse topological
    // order (dependencies always point backwards). ---
    std::vector<std::vector<int>> succ;
    succ.resize(std::size_t(n));
    for (int i = 0; i < n; ++i)
        for (const int d : p.instrs[std::size_t(i)].deps)
            succ[std::size_t(d)].push_back(i);
    r.slack.assign(std::size_t(n), 0.0);
    for (int i = n - 1; i >= 0; --i) {
        if (succ[std::size_t(i)].empty()) {
            r.slack[std::size_t(i)] = std::max(
                0.0, t.makespan - t.schedule[std::size_t(i)].finish);
            continue;
        }
        Seconds s = std::numeric_limits<double>::infinity();
        for (const int j : succ[std::size_t(i)])
            s = std::min(s, (t.schedule[std::size_t(j)].start -
                             t.schedule[std::size_t(i)].finish) +
                                r.slack[std::size_t(j)]);
        r.slack[std::size_t(i)] = s;
    }

    // --- Per-unit occupancy over the recorded busy intervals. ---
    bool used[std::size_t(kUnitCount)] = {};
    for (const ir::Instr &in : p.instrs)
        used[std::size_t(int(in.unit))] = true;
    for (int u = 0; u < kUnitCount; ++u) {
        if (!used[std::size_t(u)])
            continue;
        UnitReport row;
        row.unit = ir::Unit(u);
        const std::vector<BusyInterval> *intervals = nullptr;
        for (const auto &[name, list] : t.busy)
            if (name == ir::unitName(row.unit))
                intervals = &list;
        // Merged-interval sweep: coverage and gaps inside
        // [0, makespan], overhang past it. Intervals arrive sorted
        // by (start, instr).
        Seconds mergedStart = 0.0, mergedEnd = 0.0, prevEnd = 0.0;
        bool open = false;
        const auto closeMerged = [&] {
            if (!open)
                return;
            row.coverage += std::min(mergedEnd, t.makespan) -
                            std::min(mergedStart, t.makespan);
            row.overhang += std::max(mergedEnd, t.makespan) -
                            std::max(mergedStart, t.makespan);
            const Seconds gap = std::min(mergedStart, t.makespan) -
                                std::min(prevEnd, t.makespan);
            row.largestGap = std::max(row.largestGap, gap);
            prevEnd = mergedEnd;
            open = false;
        };
        if (intervals != nullptr) {
            row.intervals = int(intervals->size());
            for (const BusyInterval &iv : *intervals) {
                row.busy += iv.finish - iv.start;
                if (open && iv.start <= mergedEnd) {
                    mergedEnd = std::max(mergedEnd, iv.finish);
                    continue;
                }
                closeMerged();
                mergedStart = iv.start;
                mergedEnd = iv.finish;
                open = true;
            }
        }
        closeMerged();
        row.largestGap =
            std::max(row.largestGap,
                     t.makespan - std::min(prevEnd, t.makespan));
        row.idle = std::max(0.0, t.makespan - row.coverage);
        row.utilization =
            t.makespan > 0.0 ? row.coverage / t.makespan : 0.0;
        for (int i = 0; i < n; ++i)
            if (int(p.instrs[std::size_t(i)].unit) == u)
                row.maxSlack =
                    std::max(row.maxSlack, r.slack[std::size_t(i)]);
        const auto [hi, lo] = unitSum[std::size_t(u)].pair();
        row.criticalShare = {hi, lo};
        row.criticalFraction =
            t.makespan > 0.0 ? row.criticalShare.total() / t.makespan
                             : 0.0;
        r.units.push_back(row);
    }

    for (std::size_t s = 0; s < p.spans.size(); ++s) {
        const auto [hi, lo] = spanSum[s].pair();
        if (hi == 0.0 && lo == 0.0)
            continue; // span never gated the path
        LayerShare ls;
        ls.layer = p.spans[s].name;
        ls.share = {hi, lo};
        ls.fraction =
            t.makespan > 0.0 ? ls.share.total() / t.makespan : 0.0;
        r.layers.push_back(ls);
    }

    // --- Bottleneck: the unit with the largest critical share. ---
    for (const UnitReport &row : r.units)
        if (row.criticalFraction > r.bottleneckFraction) {
            r.bottleneck = row.unit;
            r.bottleneckFraction = row.criticalFraction;
        }

    // --- What-if sensitivity. ---
    if (opts.runWhatIf) {
        std::vector<std::pair<ir::Unit, double>> sweep = opts.whatIf;
        if (sweep.empty())
            for (const UnitReport &row : r.units)
                if (row.unit != ir::Unit::Ctrl)
                    sweep.push_back({row.unit, 0.5});
        for (const auto &[unit, factor] : sweep) {
            const TimedRun scaled =
                execute(scaleUnit(p, unit, factor));
            WhatIfEntry e;
            e.unit = unit;
            e.factor = factor;
            e.makespan = scaled.makespan;
            e.delta = t.makespan - scaled.makespan;
            e.speedup = scaled.makespan > 0.0
                            ? t.makespan / scaled.makespan
                            : 1.0;
            r.whatIf.push_back(e);
        }
    }
    return r;
}

void
publishMetrics(const Report &r)
{
    metrics::gauge("event.makespan_us").set(r.makespan * 1e6);
    for (const UnitReport &row : r.units) {
        const std::string base =
            std::string("event.unit.") + ir::unitName(row.unit);
        metrics::gauge(base + ".busy_us").set(row.busy * 1e6);
        metrics::gauge(base + ".idle_us").set(row.idle * 1e6);
        metrics::gauge(base + ".overhang_us").set(row.overhang * 1e6);
        metrics::gauge(base + ".utilization").set(row.utilization);
        metrics::gauge(base + ".critical_share")
            .set(row.criticalFraction);
    }
}

std::string
reportText(const ir::Program &p, const Report &r)
{
    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "bottleneck report: %s.%s.%s batch=%d overlap=%d\n",
                  p.engine.c_str(), p.network.c_str(), phaseName(p),
                  p.batchSize, p.overlap ? 1 : 0);
    os << line;
    std::snprintf(line, sizeof(line), "makespan_s %.17g\n",
                  r.makespan);
    os << line;
    std::snprintf(line, sizeof(line),
                  "critical path: %zu steps, bottleneck unit %s "
                  "(%.2f%% of makespan)\n",
                  r.path.size(), ir::unitName(r.bottleneck),
                  100.0 * r.bottleneckFraction);
    os << line;
    os << "critical-path share by unit:\n";
    os << "  unit      share_s          pct\n";
    for (const UnitReport &row : r.units) {
        std::snprintf(line, sizeof(line), "  %-8s %14.9g %8.2f%%\n",
                      ir::unitName(row.unit),
                      row.criticalShare.total(),
                      100.0 * row.criticalFraction);
        os << line;
    }
    os << "critical-path share by layer:\n";
    os << "  layer               share_s          pct\n";
    for (const LayerShare &ls : r.layers) {
        std::snprintf(line, sizeof(line), "  %-18s %14.9g %8.2f%%\n",
                      ls.layer.c_str(), ls.share.total(),
                      100.0 * ls.fraction);
        os << line;
    }
    os << "unit occupancy:\n";
    os << "  unit     intervals       busy_s   coverage_s      "
          "idle_s  overhang_s  largest_gap_s  util  max_slack_s\n";
    for (const UnitReport &row : r.units) {
        std::snprintf(line, sizeof(line),
                      "  %-8s %9d %12.6g %12.6g %11.6g %11.6g "
                      "%14.6g %5.3f %12.6g\n",
                      ir::unitName(row.unit), row.intervals, row.busy,
                      row.coverage, row.idle, row.overhang,
                      row.largestGap, row.utilization, row.maxSlack);
        os << line;
    }
    if (!r.whatIf.empty()) {
        os << "what-if (one unit's durations scaled, schedule "
              "re-executed):\n";
        os << "  unit     factor   makespan_s      delta_s  "
              "speedup\n";
        for (const WhatIfEntry &e : r.whatIf) {
            std::snprintf(line, sizeof(line),
                          "  %-8s %6.3g %12.6g %12.6g %8.3f\n",
                          ir::unitName(e.unit), e.factor, e.makespan,
                          e.delta, e.speedup);
            os << line;
        }
    }
    return os.str();
}

std::string
reportJson(const ir::Program &p, const Report &r)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"kind\": \"event.bottleneck\",\n";
    os << "  \"network\": \"" << jsonEscape(p.network) << "\",\n";
    os << "  \"engine\": \"" << jsonEscape(p.engine) << "\",\n";
    os << "  \"phase\": \"" << phaseName(p) << "\",\n";
    os << "  \"batch_size\": " << p.batchSize << ",\n";
    os << "  \"overlap\": " << (p.overlap ? "true" : "false")
       << ",\n";
    os << "  \"makespan_s\": " << num17(r.makespan) << ",\n";
    os << "  \"critical_path_steps\": " << r.path.size() << ",\n";
    os << "  \"bottleneck_unit\": \"" << ir::unitName(r.bottleneck)
       << "\",\n";
    os << "  \"bottleneck_fraction\": " << num17(r.bottleneckFraction)
       << ",\n";
    os << "  \"unit_shares\": [\n";
    for (std::size_t i = 0; i < r.units.size(); ++i) {
        const UnitReport &row = r.units[i];
        os << "    {\"unit\": \"" << ir::unitName(row.unit)
           << "\", \"share_hi_s\": " << num17(row.criticalShare.hi)
           << ", \"share_lo_s\": " << num17(row.criticalShare.lo)
           << ", \"fraction\": " << num17(row.criticalFraction)
           << "}" << (i + 1 < r.units.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"layer_shares\": [\n";
    for (std::size_t i = 0; i < r.layers.size(); ++i) {
        const LayerShare &ls = r.layers[i];
        os << "    {\"layer\": \"" << jsonEscape(ls.layer)
           << "\", \"share_hi_s\": " << num17(ls.share.hi)
           << ", \"share_lo_s\": " << num17(ls.share.lo)
           << ", \"fraction\": " << num17(ls.fraction) << "}"
           << (i + 1 < r.layers.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"units\": [\n";
    for (std::size_t i = 0; i < r.units.size(); ++i) {
        const UnitReport &row = r.units[i];
        os << "    {\"unit\": \"" << ir::unitName(row.unit)
           << "\", \"intervals\": " << row.intervals
           << ", \"busy_s\": " << num17(row.busy)
           << ", \"coverage_s\": " << num17(row.coverage)
           << ", \"idle_s\": " << num17(row.idle)
           << ", \"overhang_s\": " << num17(row.overhang)
           << ", \"largest_gap_s\": " << num17(row.largestGap)
           << ", \"utilization\": " << num17(row.utilization)
           << ", \"max_slack_s\": " << num17(row.maxSlack) << "}"
           << (i + 1 < r.units.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"what_if\": [\n";
    for (std::size_t i = 0; i < r.whatIf.size(); ++i) {
        const WhatIfEntry &e = r.whatIf[i];
        os << "    {\"unit\": \"" << ir::unitName(e.unit)
           << "\", \"factor\": " << num17(e.factor)
           << ", \"makespan_s\": " << num17(e.makespan)
           << ", \"delta_s\": " << num17(e.delta)
           << ", \"speedup\": " << num17(e.speedup) << "}"
           << (i + 1 < r.whatIf.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    {
        std::ostringstream lead;
        lead << "\"config_key_hash\": \"0x" << std::hex
             << p.configKeyHash << std::dec << "\"";
        os << "  \"provenance\": {\n"
           << provenanceJson(lead.str(), "    ") << "  }\n";
    }
    os << "}\n";
    return os.str();
}

std::string
reportCsv(const ir::Program &p, const Report &r)
{
    (void)p;
    std::ostringstream os;
    os << "unit,intervals,busy_s,coverage_s,idle_s,overhang_s,"
          "largest_gap_s,utilization,max_slack_s,"
          "critical_share_hi_s,critical_share_lo_s,"
          "critical_fraction\n";
    for (const UnitReport &row : r.units) {
        os << csvField(ir::unitName(row.unit)) << ","
           << row.intervals << "," << num17(row.busy) << ","
           << num17(row.coverage) << "," << num17(row.idle) << ","
           << num17(row.overhang) << "," << num17(row.largestGap)
           << "," << num17(row.utilization) << ","
           << num17(row.maxSlack) << ","
           << num17(row.criticalShare.hi) << ","
           << num17(row.criticalShare.lo) << ","
           << num17(row.criticalFraction) << "\n";
    }
    return os.str();
}

} // namespace event
} // namespace inca
