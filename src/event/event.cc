#include "event/event.hh"

#include "event/analysis.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>

#include "common/logging.hh"
#include "common/trace.hh"

namespace inca {
namespace event {

TimedRun
execute(const ir::Program &p)
{
    const int n = int(p.instrs.size());
    inca_assert(n >= 1, "empty program '%s'", p.network.c_str());

    TimedRun t;
    t.schedule.resize(std::size_t(n));

    // Successor lists + in-degrees from the lowered dependencies.
    std::vector<int> indeg(std::size_t(n), 0);
    std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        indeg[std::size_t(i)] = int(p.instrs[std::size_t(i)].deps.size());
        for (const int d : p.instrs[std::size_t(i)].deps)
            succ[std::size_t(d)].push_back(i);
    }

    // ready[i] = max finish over resolved dependencies. Taking the
    // running max (never a sum) keeps the schedule's arithmetic the
    // exact additions of the lowered durations, independent of event
    // pop order -- max is order-independent, unlike FP addition.
    std::vector<Seconds> ready(std::size_t(n), 0.0);

    using Event = std::pair<Seconds, int>; // (finish, instr)
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue;
    int dispatched = 0;
    for (int i = 0; i < n; ++i) {
        if (indeg[std::size_t(i)] == 0) {
            t.schedule[std::size_t(i)] = {
                0.0, p.instrs[std::size_t(i)].duration};
            queue.emplace(t.schedule[std::size_t(i)].finish, i);
            ++dispatched;
        }
    }

    int completed = 0;
    while (!queue.empty()) {
        const auto [finish, i] = queue.top();
        queue.pop();
        ++completed;
        for (const int s : succ[std::size_t(i)]) {
            ready[std::size_t(s)] =
                std::max(ready[std::size_t(s)], finish);
            if (--indeg[std::size_t(s)] == 0) {
                const Seconds start = ready[std::size_t(s)];
                t.schedule[std::size_t(s)] = {
                    start,
                    start + p.instrs[std::size_t(s)].duration};
                queue.emplace(t.schedule[std::size_t(s)].finish, s);
                ++dispatched;
            }
        }
    }
    inca_assert(completed == n && dispatched == n,
                "deadlock in '%s': %d of %d instructions ran",
                p.network.c_str(), completed, n);

    // The exit sync is the last instruction by construction.
    t.makespan = t.schedule[std::size_t(n - 1)].finish;

    // Collapse spans through the same shared code path the analytic
    // walk uses -- never as schedule-time differences, which would not
    // be bit-exact ((t + x) - t != x in floating point).
    t.run.network = p.network;
    t.run.phase = p.phase;
    t.run.batchSize = p.batchSize;
    t.run.configKeyHash = p.configKeyHash;
    for (const ir::Span &span : p.spans) {
        if (span.synthetic)
            continue;
        t.run.layers.push_back(ir::collapseSpan(p, span));
    }
    t.run.latency = t.makespan;
    t.run.staticEnergy = p.idlePower * t.makespan;

    // Busy intervals per unit, ordered by (start, instr); sync
    // instructions occupy nothing.
    std::vector<std::pair<ir::Unit, BusyInterval>> occ;
    for (int i = 0; i < n; ++i) {
        const ir::Instr &in = p.instrs[std::size_t(i)];
        if (in.op == ir::Op::Sync)
            continue;
        occ.push_back({in.unit,
                       {i, t.schedule[std::size_t(i)].start,
                        t.schedule[std::size_t(i)].finish}});
    }
    std::sort(occ.begin(), occ.end(), [](const auto &a, const auto &b) {
        if (a.first != b.first)
            return int(a.first) < int(b.first);
        if (a.second.start != b.second.start)
            return a.second.start < b.second.start;
        return a.second.instr < b.second.instr;
    });
    for (const auto &[unit, interval] : occ) {
        if (t.busy.empty() || t.busy.back().first != ir::unitName(unit))
            t.busy.push_back({ir::unitName(unit), {}});
        t.busy.back().second.push_back(interval);
    }
    return t;
}

void
emitTrace(const ir::Program &p, const TimedRun &t)
{
    if (!trace::enabled())
        return;
    const auto us = [](Seconds s) {
        return std::int64_t(std::llround(s * 1e6));
    };
    for (int i = 0; i < int(p.instrs.size()); ++i) {
        const ir::Instr &in = p.instrs[std::size_t(i)];
        const std::string name =
            std::string(ir::unitName(in.unit)) + " " +
            (in.label.empty() ? ir::opName(in.op) : in.label);
        if (in.op == ir::Op::Sync) {
            // Joins cost nothing but show where chains meet.
            trace::emitInstant(name,
                               us(t.schedule[std::size_t(i)].start));
            continue;
        }
        const std::int64_t start =
            us(t.schedule[std::size_t(i)].start);
        const std::int64_t dur =
            us(t.schedule[std::size_t(i)].finish) - start;
        trace::emitComplete(name, start, dur);
    }
    trace::emitInstant("makespan", us(t.makespan));

    // Flow arrows between consecutive work steps of the critical
    // path, so the chain that sets the makespan reads as one line in
    // the viewer.
    AnalyzeOptions opts;
    opts.runWhatIf = false;
    const Report r = analyze(p, t, opts);
    std::uint64_t flowId = 1;
    int prev = -1;
    for (const PathStep &step : r.path) {
        if (p.instrs[std::size_t(step.instr)].op == ir::Op::Sync)
            continue;
        if (prev >= 0)
            trace::emitFlow("critical", flowId++,
                            us(t.schedule[std::size_t(prev)].finish),
                            us(step.start));
        prev = step.instr;
    }

    // Ready-queue depth: work instructions in flight per schedule
    // time (one counter sample per distinct microsecond timestamp).
    std::vector<std::pair<std::int64_t, int>> deltas;
    for (int i = 0; i < int(p.instrs.size()); ++i) {
        if (p.instrs[std::size_t(i)].op == ir::Op::Sync)
            continue;
        deltas.push_back({us(t.schedule[std::size_t(i)].start), +1});
        deltas.push_back({us(t.schedule[std::size_t(i)].finish), -1});
    }
    std::sort(deltas.begin(), deltas.end());
    int depth = 0;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        depth += deltas[i].second;
        if (i + 1 == deltas.size() ||
            deltas[i + 1].first != deltas[i].first)
            trace::counterAt("event.ready_queue", deltas[i].first,
                             double(depth));
    }
}

} // namespace event
} // namespace inca
