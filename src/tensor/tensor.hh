/**
 * @file
 * Minimal dense float tensor.
 *
 * The functional side of the simulator (accuracy experiments, functional
 * verification of the INCA direct-convolution array and the baseline
 * GEMM path) operates on small dense tensors. Data is stored row-major;
 * the common layouts are NCHW for activations and (N out, C in, KH, KW)
 * for convolution kernels.
 */

#ifndef INCA_TENSOR_TENSOR_HH
#define INCA_TENSOR_TENSOR_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace inca {

class Rng;

namespace tensor {

/** Dense row-major float tensor with explicit shape. */
class Tensor
{
  public:
    /** An empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape);

    /** Construct with shape and explicit data (sizes must match). */
    Tensor(std::vector<std::int64_t> shape, std::vector<float> data);

    /** Zero-filled tensor factory. */
    static Tensor zeros(std::vector<std::int64_t> shape);

    /** Constant-filled tensor factory. */
    static Tensor full(std::vector<std::int64_t> shape, float value);

    /** Gaussian-random tensor (mean 0, given sigma) from @p rng. */
    static Tensor randn(std::vector<std::int64_t> shape, Rng &rng,
                        float sigma = 1.0f);

    /** Uniform-random tensor in [lo, hi) from @p rng. */
    static Tensor uniform(std::vector<std::int64_t> shape, Rng &rng,
                          float lo, float hi);

    /** Total number of elements. */
    std::int64_t size() const { return std::int64_t(data_.size()); }

    /** Tensor rank (number of dimensions). */
    int rank() const { return int(shape_.size()); }

    /** Shape vector. */
    const std::vector<std::int64_t> &shape() const { return shape_; }

    /** Size of dimension @p dim (supports negative indices). */
    std::int64_t dim(int d) const;

    /** Flat data access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access with bounds check. */
    float &operator[](std::int64_t i);
    float operator[](std::int64_t i) const;

    /** 1-D indexed access. */
    float &at(std::int64_t i0);
    /** 2-D indexed access. */
    float &at(std::int64_t i0, std::int64_t i1);
    /** 3-D indexed access. */
    float &at(std::int64_t i0, std::int64_t i1, std::int64_t i2);
    /** 4-D indexed access. */
    float &at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
              std::int64_t i3);

    float at(std::int64_t i0) const;
    float at(std::int64_t i0, std::int64_t i1) const;
    float at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const;
    float at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
             std::int64_t i3) const;

    /** Reinterpret with a new shape of identical element count. */
    Tensor reshaped(std::vector<std::int64_t> shape) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Elementwise in-place operations. */
    Tensor &operator+=(const Tensor &other);
    Tensor &operator-=(const Tensor &other);
    Tensor &operator*=(float scalar);

    /** Sum of all elements. */
    double sum() const;

    /** Maximum absolute element (0 for empty). */
    float absMax() const;

    /** True when shapes and all elements match exactly. */
    bool equals(const Tensor &other) const;

    /** True when shapes match and elements differ by at most @p tol. */
    bool allClose(const Tensor &other, float tol = 1e-5f) const;

    /** Human-readable shape, e.g. "[2, 3, 8, 8]". */
    std::string shapeStr() const;

  private:
    std::int64_t flatIndex(const std::int64_t *idx, int n) const;

    std::vector<std::int64_t> shape_;
    std::vector<std::int64_t> strides_;
    std::vector<float> data_;
};

} // namespace tensor
} // namespace inca

#endif // INCA_TENSOR_TENSOR_HH
