/**
 * @file
 * Neural-network math on dense tensors.
 *
 * Two convolution paths are provided on purpose:
 *  - conv2d(): the production path -- im2col packing + a cache-blocked
 *    GEMM kernel, parallelized over the batch x filter dimension on
 *    the shared ThreadPool (see common/thread_pool.hh);
 *  - conv2dNaive() (and the *GradNaive() variants): the direct
 *    scalar-loop convolution, the dataflow INCA's 2T1R planes execute
 *    in hardware, retained as the differential-testing reference.
 * conv2dGemm() aliases the production path; im2col + GEMM is the
 * unrolled dataflow weight-stationary crossbar accelerators (the
 * paper's baseline) execute. Integration tests require all paths to agree
 * bit-for-bit, which is the software analogue of the paper's claim
 * that direct convolution preserves the mathematical result without
 * unrolling.
 *
 * Determinism contract: every element of every output is accumulated
 * in a fixed serial order (ascending im2col column order, which is
 * exactly the naive loops' accumulation order), and parallel tasks
 * own disjoint output slices -- no atomics on floats, no cross-task
 * reductions. Results are therefore bit-identical at every thread
 * count, including INCA_NUM_THREADS=1.
 *
 * Layouts: activations NCHW; convolution weights (F out, C in, KH, KW);
 * depthwise weights (C, KH, KW); FC weights (D in, F out).
 */

#ifndef INCA_TENSOR_OPS_HH
#define INCA_TENSOR_OPS_HH

#include <cstdint>
#include <utility>

#include "tensor/tensor.hh"

namespace inca {
namespace tensor {

/** Spatial parameters of a convolution / pooling window. */
struct ConvSpec
{
    int stride = 1; ///< Stride in both spatial dimensions.
    int pad = 0;    ///< Zero padding on each spatial border.
};

/** Output spatial size for a window of size @p k over @p in elements. */
std::int64_t convOutDim(std::int64_t in, int k, const ConvSpec &spec);

/**
 * 2-D convolution (cross-correlation as in DNN frameworks), computed
 * via im2col + blocked GEMM in parallel. Bit-identical to
 * conv2dNaive() at every thread count.
 *
 * @param x input activations [N, C, H, W]
 * @param w kernels [F, C, KH, KW]
 * @param spec stride / padding
 * @return output [N, F, OH, OW]
 */
Tensor conv2d(const Tensor &x, const Tensor &w, const ConvSpec &spec = {});

/** Gradient of conv2d w.r.t. its input ("transposed kernel" conv). */
Tensor conv2dInputGrad(const Tensor &dy, const Tensor &w,
                       const std::vector<std::int64_t> &xShape,
                       const ConvSpec &spec = {});

/** Gradient of conv2d w.r.t. its kernels (input * error convolution). */
Tensor conv2dWeightGrad(const Tensor &dy, const Tensor &x,
                        const std::vector<std::int64_t> &wShape,
                        const ConvSpec &spec = {});

/**
 * Reference implementations: the single-threaded 6-deep scalar loops,
 * exactly the arithmetic INCA's planes execute in hardware. The
 * differential tests require the production paths above to match
 * these bit-for-bit.
 */
Tensor conv2dNaive(const Tensor &x, const Tensor &w,
                   const ConvSpec &spec = {});

/** Reference input gradient (scalar scatter loops). */
Tensor conv2dInputGradNaive(const Tensor &dy, const Tensor &w,
                            const std::vector<std::int64_t> &xShape,
                            const ConvSpec &spec = {});

/** Reference weight gradient (scalar scatter loops). */
Tensor conv2dWeightGradNaive(const Tensor &dy, const Tensor &x,
                             const std::vector<std::int64_t> &wShape,
                             const ConvSpec &spec = {});

/**
 * Depthwise 2-D convolution: channel c of the output depends only on
 * channel c of the input (no cross-channel accumulation).
 *
 * @param x input [N, C, H, W]
 * @param w kernels [C, KH, KW]
 */
Tensor depthwiseConv2d(const Tensor &x, const Tensor &w,
                       const ConvSpec &spec = {});

/** Gradient of depthwiseConv2d w.r.t. its input. */
Tensor depthwiseConv2dInputGrad(const Tensor &dy, const Tensor &w,
                                const std::vector<std::int64_t> &xShape,
                                const ConvSpec &spec = {});

/** Gradient of depthwiseConv2d w.r.t. its kernels. */
Tensor depthwiseConv2dWeightGrad(const Tensor &dy, const Tensor &x,
                                 const std::vector<std::int64_t> &wShape,
                                 const ConvSpec &spec = {});

/** Dense matrix product: [M, K] x [K, N] -> [M, N]. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** Transpose of a rank-2 tensor. */
Tensor transpose(const Tensor &a);

/**
 * Unroll convolution windows into rows (im2col).
 *
 * @return [N * OH * OW, C * KH * KW]
 */
Tensor im2col(const Tensor &x, int kh, int kw, const ConvSpec &spec = {});

/** Convolution via im2col + GEMM; must equal conv2d() exactly. */
Tensor conv2dGemm(const Tensor &x, const Tensor &w,
                  const ConvSpec &spec = {});

/** Fully connected layer: [N, D] x [D, F] + bias[F] -> [N, F]. */
Tensor fc(const Tensor &x, const Tensor &w, const Tensor &bias);

/** FC gradient w.r.t. input. */
Tensor fcInputGrad(const Tensor &dy, const Tensor &w);

/** FC gradient w.r.t. weights. */
Tensor fcWeightGrad(const Tensor &dy, const Tensor &x);

/** FC gradient w.r.t. bias (column sums of dy). */
Tensor fcBiasGrad(const Tensor &dy);

/** Elementwise max(0, x). */
Tensor relu(const Tensor &x);

/** ReLU backward: dy masked by x > 0. */
Tensor reluGrad(const Tensor &dy, const Tensor &x);

/** Elementwise logistic sigmoid. */
Tensor sigmoid(const Tensor &x);

/** Sigmoid backward given the forward OUTPUT y: dy * y * (1 - y). */
Tensor sigmoidGrad(const Tensor &dy, const Tensor &y);

/** Elementwise hyperbolic tangent. */
Tensor tanhAct(const Tensor &x);

/** Tanh backward given the forward OUTPUT y: dy * (1 - y^2). */
Tensor tanhGrad(const Tensor &dy, const Tensor &y);

/** Result of a max-pool forward pass. */
struct PoolResult
{
    Tensor output;  ///< pooled values [N, C, OH, OW]
    Tensor argmax;  ///< flat spatial index of each max, same shape
};

/** 2-D max pooling with a k x k window. */
PoolResult maxPool2d(const Tensor &x, int k, const ConvSpec &spec);

/** Max-pool backward: route dy to the recorded argmax positions. */
Tensor maxPool2dGrad(const Tensor &dy, const Tensor &argmax,
                     const std::vector<std::int64_t> &xShape, int k,
                     const ConvSpec &spec);

/** Global average pooling: [N, C, H, W] -> [N, C]. */
Tensor globalAvgPool(const Tensor &x);

/** Global-average-pool backward. */
Tensor globalAvgPoolGrad(const Tensor &dy,
                         const std::vector<std::int64_t> &xShape);

/** Row-wise softmax of [N, F] logits. */
Tensor softmax(const Tensor &logits);

/** Loss value + logits gradient of softmax cross-entropy. */
struct LossResult
{
    double loss = 0.0; ///< mean loss over the batch
    Tensor grad;       ///< d loss / d logits, [N, F]
};

/**
 * Mean softmax cross-entropy over a batch.
 *
 * @param logits [N, F]
 * @param labels class index per row, length N
 */
LossResult crossEntropy(const Tensor &logits,
                        const std::vector<int> &labels);

/**
 * Mean L2 loss over a batch against one-hot targets -- the loss the
 * paper describes INCA's backward pass with (Eq. 3: delta_L =
 * y_target - y_pred up to sign/scale).
 *
 * @param outputs [N, F] predictions
 * @param labels class index per row, length N
 */
LossResult l2Loss(const Tensor &outputs, const std::vector<int> &labels);

/** Number of rows whose arg-max equals the label. */
int countCorrect(const Tensor &logits, const std::vector<int> &labels);

} // namespace tensor
} // namespace inca

#endif // INCA_TENSOR_OPS_HH
