#include "tensor/tensor.hh"

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"

namespace inca {
namespace tensor {

namespace {

std::int64_t
shapeSize(const std::vector<std::int64_t> &shape)
{
    std::int64_t n = 1;
    for (auto d : shape) {
        inca_assert(d >= 0, "negative dimension %lld", (long long)d);
        n *= d;
    }
    return n;
}

std::vector<std::int64_t>
computeStrides(const std::vector<std::int64_t> &shape)
{
    std::vector<std::int64_t> strides(shape.size(), 1);
    for (int d = int(shape.size()) - 2; d >= 0; --d)
        strides[d] = strides[d + 1] * shape[d + 1];
    return strides;
}

} // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), strides_(computeStrides(shape_)),
      data_(shapeSize(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), strides_(computeStrides(shape_)),
      data_(std::move(data))
{
    inca_assert(std::int64_t(data_.size()) == shapeSize(shape_),
                "data size %zu does not match shape size %lld",
                data_.size(), (long long)shapeSize(shape_));
}

Tensor
Tensor::zeros(std::vector<std::int64_t> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(std::vector<std::int64_t> shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(std::vector<std::int64_t> shape, Rng &rng, float sigma)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = float(rng.gaussian(0.0, sigma));
    return t;
}

Tensor
Tensor::uniform(std::vector<std::int64_t> shape, Rng &rng, float lo,
                float hi)
{
    Tensor t(std::move(shape));
    for (auto &v : t.data_)
        v = float(rng.uniform(lo, hi));
    return t;
}

std::int64_t
Tensor::dim(int d) const
{
    if (d < 0)
        d += rank();
    inca_assert(d >= 0 && d < rank(), "dim %d out of range for rank %d", d,
                rank());
    return shape_[size_t(d)];
}

float &
Tensor::operator[](std::int64_t i)
{
    inca_assert(i >= 0 && i < size(), "flat index %lld out of range",
                (long long)i);
    return data_[size_t(i)];
}

float
Tensor::operator[](std::int64_t i) const
{
    inca_assert(i >= 0 && i < size(), "flat index %lld out of range",
                (long long)i);
    return data_[size_t(i)];
}

std::int64_t
Tensor::flatIndex(const std::int64_t *idx, int n) const
{
    inca_assert(n == rank(), "index arity %d != rank %d", n, rank());
    std::int64_t flat = 0;
    for (int d = 0; d < n; ++d) {
        inca_assert(idx[d] >= 0 && idx[d] < shape_[size_t(d)],
                    "index %lld out of range for dim %d (size %lld)",
                    (long long)idx[d], d, (long long)shape_[size_t(d)]);
        flat += idx[d] * strides_[size_t(d)];
    }
    return flat;
}

float &
Tensor::at(std::int64_t i0)
{
    const std::int64_t idx[] = {i0};
    return data_[size_t(flatIndex(idx, 1))];
}

float &
Tensor::at(std::int64_t i0, std::int64_t i1)
{
    const std::int64_t idx[] = {i0, i1};
    return data_[size_t(flatIndex(idx, 2))];
}

float &
Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2)
{
    const std::int64_t idx[] = {i0, i1, i2};
    return data_[size_t(flatIndex(idx, 3))];
}

float &
Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3)
{
    const std::int64_t idx[] = {i0, i1, i2, i3};
    return data_[size_t(flatIndex(idx, 4))];
}

float
Tensor::at(std::int64_t i0) const
{
    const std::int64_t idx[] = {i0};
    return data_[size_t(flatIndex(idx, 1))];
}

float
Tensor::at(std::int64_t i0, std::int64_t i1) const
{
    const std::int64_t idx[] = {i0, i1};
    return data_[size_t(flatIndex(idx, 2))];
}

float
Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2) const
{
    const std::int64_t idx[] = {i0, i1, i2};
    return data_[size_t(flatIndex(idx, 3))];
}

float
Tensor::at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const
{
    const std::int64_t idx[] = {i0, i1, i2, i3};
    return data_[size_t(flatIndex(idx, 4))];
}

Tensor
Tensor::reshaped(std::vector<std::int64_t> shape) const
{
    inca_assert(shapeSize(shape) == size(),
                "reshape size mismatch: %lld -> %lld", (long long)size(),
                (long long)shapeSize(shape));
    return Tensor(std::move(shape), data_);
}

void
Tensor::fill(float value)
{
    for (auto &v : data_)
        v = value;
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    inca_assert(shape_ == other.shape_, "shape mismatch in +=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor &
Tensor::operator-=(const Tensor &other)
{
    inca_assert(shape_ == other.shape_, "shape mismatch in -=");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Tensor &
Tensor::operator*=(float scalar)
{
    for (auto &v : data_)
        v *= scalar;
    return *this;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (auto v : data_)
        s += v;
    return s;
}

float
Tensor::absMax() const
{
    float m = 0.0f;
    for (auto v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

bool
Tensor::equals(const Tensor &other) const
{
    return shape_ == other.shape_ && data_ == other.data_;
}

bool
Tensor::allClose(const Tensor &other, float tol) const
{
    if (shape_ != other.shape_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (std::fabs(data_[i] - other.data_[i]) > tol)
            return false;
    }
    return true;
}

std::string
Tensor::shapeStr() const
{
    std::ostringstream os;
    os << "[";
    for (size_t d = 0; d < shape_.size(); ++d) {
        if (d)
            os << ", ";
        os << shape_[d];
    }
    os << "]";
    return os.str();
}

} // namespace tensor
} // namespace inca
