/**
 * @file
 * Runtime ISA dispatch for the tensor microkernels.
 *
 * Resolution order: setActive() (tests/bench) > INCA_KERNEL_ISA >
 * widest CPU-supported set. A forced ISA the build or CPU cannot run
 * is a hard error -- the CI matrix legs that fan INCA_KERNEL_ISA over
 * paths rely on "requested" always meaning "executed".
 */

#include "tensor/kernels/kernels.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/metrics.hh"

namespace inca {
namespace kernels {

// Defined by the per-ISA translation units. The scalar set is always
// compiled; the vector sets degrade to nullptr when the toolchain
// cannot target them (see tensor/CMakeLists.txt).
extern const KernelSet kScalarKernels;
extern const KernelSet *kAvx2Kernels;
extern const KernelSet *kAvx512Kernels;

namespace {

bool
cpuSupports(Isa isa)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (isa) {
      case Isa::Scalar:
        return true;
      case Isa::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
      case Isa::Avx512:
        return __builtin_cpu_supports("avx512f") != 0;
    }
#else
    if (isa == Isa::Scalar)
        return true;
#endif
    return false;
}

/** Widest available set -- the default when nothing is forced. */
const KernelSet &
autoDetect()
{
    if (const KernelSet *k = kernelSet(Isa::Avx512))
        return *k;
    if (const KernelSet *k = kernelSet(Isa::Avx2))
        return *k;
    return kScalarKernels;
}

/** Resolve INCA_KERNEL_ISA (or auto-detect); fatal on bad values. */
const KernelSet &
resolve()
{
    const char *env = std::getenv("INCA_KERNEL_ISA");
    if (env == nullptr || *env == '\0')
        return autoDetect();
    Isa isa;
    if (!parseIsa(env, isa))
        fatal("INCA_KERNEL_ISA='%s' is not a kernel ISA; valid "
              "values are scalar, avx2, avx512",
              env);
    const KernelSet *k = kernelSet(isa);
    if (k == nullptr)
        fatal("INCA_KERNEL_ISA=%s requested but this %s does not "
              "support it; available: %s",
              isaName(isa),
              cpuSupports(isa) ? "build" : "CPU",
              isaName(autoDetect().isa));
    return *k;
}

/**
 * The active set. Stored as an atomic pointer so setActive() from a
 * test body is visible to pool workers without a lock on the hot
 * dispatch read.
 */
std::atomic<const KernelSet *> gActive{nullptr};

/** Per-ISA dispatch counters, resolved once (registry lookups are
 * mutex-guarded; the hot path must stay a single relaxed inc). */
metrics::Counter &
dispatchCounter(Isa isa)
{
    static metrics::Counter *counters[3] = {
        &metrics::counter("kernel.dispatch.scalar"),
        &metrics::counter("kernel.dispatch.avx2"),
        &metrics::counter("kernel.dispatch.avx512"),
    };
    return *counters[int(isa)];
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return "scalar";
      case Isa::Avx2:
        return "avx2";
      case Isa::Avx512:
        return "avx512";
    }
    panic("unreachable kernel ISA %d", int(isa));
}

bool
parseIsa(const char *text, Isa &out)
{
    if (text == nullptr)
        return false;
    if (std::strcmp(text, "scalar") == 0)
        out = Isa::Scalar;
    else if (std::strcmp(text, "avx2") == 0)
        out = Isa::Avx2;
    else if (std::strcmp(text, "avx512") == 0)
        out = Isa::Avx512;
    else
        return false;
    return true;
}

const KernelSet *
kernelSet(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return &kScalarKernels;
      case Isa::Avx2:
        return cpuSupports(Isa::Avx2) ? kAvx2Kernels : nullptr;
      case Isa::Avx512:
        return cpuSupports(Isa::Avx512) ? kAvx512Kernels : nullptr;
    }
    return nullptr;
}

bool
isaAvailable(Isa isa)
{
    return kernelSet(isa) != nullptr;
}

std::vector<Isa>
availableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Avx512})
        if (isaAvailable(isa))
            out.push_back(isa);
    return out;
}

const KernelSet &
active()
{
    const KernelSet *k = gActive.load(std::memory_order_acquire);
    if (k == nullptr) {
        // First use (or post-reset): resolve and publish. Concurrent
        // first calls race benignly -- resolve() is deterministic.
        k = &resolve();
        gActive.store(k, std::memory_order_release);
    }
    dispatchCounter(k->isa).inc();
    return *k;
}

Isa
activeIsa()
{
    const KernelSet *k = gActive.load(std::memory_order_acquire);
    if (k == nullptr) {
        k = &resolve();
        gActive.store(k, std::memory_order_release);
    }
    return k->isa;
}

void
setActive(Isa isa)
{
    const KernelSet *k = kernelSet(isa);
    inca_assert(k != nullptr, "setActive(%s): ISA unavailable",
                isaName(isa));
    gActive.store(k, std::memory_order_release);
}

void
resetActive()
{
    gActive.store(nullptr, std::memory_order_release);
}

} // namespace kernels
} // namespace inca
