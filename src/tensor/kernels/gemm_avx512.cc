/**
 * @file
 * AVX-512F kernels: 16-wide float GEMM/packing, 8-wide double scan.
 *
 * Same structure and bit-identity contract as the AVX2 set (see
 * gemm_avx2.cc): only the output-column loop is vectorized, multiply
 * and add stay separate roundings, masked tail stores handle the
 * non-multiple-of-16 columns the differential rig hammers.
 */

#include "tensor/kernels/kernels.hh"

#include "common/logging.hh"

#if defined(INCA_BUILD_AVX512) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace inca {
namespace kernels {

namespace {

/** One row's update c[0..n) += v * b[0..n), 16 floats per step. */
inline void
axpyRow512(float *c, const float *b, float v, std::int64_t n)
{
    const __m512 vv = _mm512_set1_ps(v);
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 bv = _mm512_loadu_ps(b + j);
        _mm512_storeu_ps(
            c + j,
            _mm512_add_ps(_mm512_loadu_ps(c + j), _mm512_mul_ps(vv, bv)));
    }
    if (j < n) {
        const __mmask16 tail = __mmask16((1u << (n - j)) - 1u);
        const __m512 bv = _mm512_maskz_loadu_ps(tail, b + j);
        const __m512 cv = _mm512_maskz_loadu_ps(tail, c + j);
        _mm512_mask_storeu_ps(
            c + j, tail, _mm512_add_ps(cv, _mm512_mul_ps(vv, bv)));
    }
}

void
gemmRowRangeAvx512(const float *a, std::int64_t lda, const float *b,
                   std::int64_t ldb, float *c, std::int64_t ldc,
                   std::int64_t i0, std::int64_t i1, std::int64_t depth,
                   std::int64_t n)
{
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
        const float *a0 = a + i * lda;
        const float *a1 = a0 + lda;
        const float *a2 = a1 + lda;
        const float *a3 = a2 + lda;
        float *c0 = c + i * ldc;
        float *c1 = c0 + ldc;
        float *c2 = c1 + ldc;
        float *c3 = c2 + ldc;
        for (std::int64_t k = 0; k < depth; ++k) {
            const float *br = b + k * ldb;
            const __m512 v0 = _mm512_set1_ps(a0[k]);
            const __m512 v1 = _mm512_set1_ps(a1[k]);
            const __m512 v2 = _mm512_set1_ps(a2[k]);
            const __m512 v3 = _mm512_set1_ps(a3[k]);
            std::int64_t j = 0;
            for (; j + 16 <= n; j += 16) {
                const __m512 bv = _mm512_loadu_ps(br + j);
                _mm512_storeu_ps(c0 + j,
                                 _mm512_add_ps(_mm512_loadu_ps(c0 + j),
                                               _mm512_mul_ps(v0, bv)));
                _mm512_storeu_ps(c1 + j,
                                 _mm512_add_ps(_mm512_loadu_ps(c1 + j),
                                               _mm512_mul_ps(v1, bv)));
                _mm512_storeu_ps(c2 + j,
                                 _mm512_add_ps(_mm512_loadu_ps(c2 + j),
                                               _mm512_mul_ps(v2, bv)));
                _mm512_storeu_ps(c3 + j,
                                 _mm512_add_ps(_mm512_loadu_ps(c3 + j),
                                               _mm512_mul_ps(v3, bv)));
            }
            if (j < n) {
                const __mmask16 tail =
                    __mmask16((1u << (n - j)) - 1u);
                const __m512 bv = _mm512_maskz_loadu_ps(tail, br + j);
                const __m512 u0 = _mm512_maskz_loadu_ps(tail, c0 + j);
                const __m512 u1 = _mm512_maskz_loadu_ps(tail, c1 + j);
                const __m512 u2 = _mm512_maskz_loadu_ps(tail, c2 + j);
                const __m512 u3 = _mm512_maskz_loadu_ps(tail, c3 + j);
                _mm512_mask_storeu_ps(
                    c0 + j, tail,
                    _mm512_add_ps(u0, _mm512_mul_ps(v0, bv)));
                _mm512_mask_storeu_ps(
                    c1 + j, tail,
                    _mm512_add_ps(u1, _mm512_mul_ps(v1, bv)));
                _mm512_mask_storeu_ps(
                    c2 + j, tail,
                    _mm512_add_ps(u2, _mm512_mul_ps(v2, bv)));
                _mm512_mask_storeu_ps(
                    c3 + j, tail,
                    _mm512_add_ps(u3, _mm512_mul_ps(v3, bv)));
            }
        }
    }
    for (; i < i1; ++i) {
        const float *ar = a + i * lda;
        float *cr = c + i * ldc;
        for (std::int64_t k = 0; k < depth; ++k)
            axpyRow512(cr, b + k * ldb, ar[k], n);
    }
}

void
copyRowAvx512(float *dst, const float *src, std::int64_t count)
{
    std::int64_t j = 0;
    for (; j + 16 <= count; j += 16)
        _mm512_storeu_ps(dst + j, _mm512_loadu_ps(src + j));
    if (j < count) {
        const __mmask16 tail = __mmask16((1u << (count - j)) - 1u);
        _mm512_mask_storeu_ps(dst + j, tail,
                              _mm512_maskz_loadu_ps(tail, src + j));
    }
}

void
gatherRowAvx512(float *dst, const float *src, std::int64_t count,
                std::int64_t stride)
{
    inca_assert(stride > 0 && count * stride <= INT32_MAX,
                "gatherRow index overflow: count %lld stride %lld",
                (long long)count, (long long)stride);
    const std::int32_t s = std::int32_t(stride);
    alignas(64) std::int32_t idx[16];
    for (int lane = 0; lane < 16; ++lane)
        idx[lane] = lane * s;
    const __m512i base0 = _mm512_load_si512(idx);
    const __m512i step = _mm512_set1_epi32(16 * s);
    __m512i base = base0;
    std::int64_t j = 0;
    for (; j + 16 <= count; j += 16) {
        _mm512_storeu_ps(dst + j,
                         _mm512_i32gather_ps(base, src, 4));
        base = _mm512_add_epi32(base, step);
    }
    for (; j < count; ++j)
        dst[j] = src[j * stride];
}

std::int64_t
scanBelowAvx512(const double *v, std::int64_t count, double threshold)
{
    const __m512d thr = _mm512_set1_pd(threshold);
    std::int64_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const __mmask8 mask = _mm512_cmp_pd_mask(
            _mm512_loadu_pd(v + i), thr, _CMP_LT_OQ);
        if (mask != 0)
            return i + __builtin_ctz(unsigned(mask));
    }
    for (; i < count; ++i)
        if (v[i] < threshold)
            return i;
    return count;
}

} // namespace

extern const KernelSet *kAvx512Kernels;
const KernelSet kAvx512KernelsStorage = {
    Isa::Avx512,    "avx512",         &gemmRowRangeAvx512,
    &copyRowAvx512, &gatherRowAvx512, &scanBelowAvx512,
};
const KernelSet *kAvx512Kernels = &kAvx512KernelsStorage;

} // namespace kernels
} // namespace inca

#else // !INCA_BUILD_AVX512

namespace inca {
namespace kernels {

/** Toolchain cannot target AVX-512: the set is absent at runtime. */
extern const KernelSet *kAvx512Kernels;
const KernelSet *kAvx512Kernels = nullptr;

} // namespace kernels
} // namespace inca

#endif
