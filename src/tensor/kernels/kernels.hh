/**
 * @file
 * Vectorized microkernels with runtime CPU dispatch.
 *
 * Every numeric hot loop the tensor layer (and the Monte-Carlo fault
 * sampler) runs is routed through a KernelSet: a table of function
 * pointers with one implementation per instruction set. Three sets
 * exist -- scalar (the retained reference), AVX2 (8-wide floats /
 * 4-wide doubles) and AVX-512 (16-wide / 8-wide) -- and the process
 * picks the widest one the CPU supports at first use.
 *
 * Determinism contract (the property every differential test pins):
 * all three implementations of every kernel produce BIT-IDENTICAL
 * results. The GEMM kernels vectorize across output columns only --
 * each output element still accumulates its k-products in the same
 * ascending serial order as the scalar loops, one multiply and one
 * add per step (no FMA contraction, which would change the rounding)
 * -- and the packing/scan kernels move or compare values without
 * arithmetic. Switching ISA can therefore never change simulator
 * output, only wall-clock.
 *
 * Selection order:
 *  1. kernels::setActive() (tests and the bench harness);
 *  2. the INCA_KERNEL_ISA environment variable ("scalar", "avx2",
 *     "avx512") -- naming an ISA the build or CPU lacks is fatal(),
 *     so a forced CI matrix leg can never silently fall back;
 *  3. the widest ISA the CPU supports.
 *
 * Observability: every call to kernels::active() bumps the
 * kernel.dispatch.<isa> metrics counter, so INCA_METRICS / --json
 * reports show exactly which path executed (and how often).
 */

#ifndef INCA_TENSOR_KERNELS_KERNELS_HH
#define INCA_TENSOR_KERNELS_KERNELS_HH

#include <cstdint>
#include <vector>

namespace inca {
namespace kernels {

/** Instruction sets a KernelSet can be built for. */
enum class Isa
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Lower-case name used by INCA_KERNEL_ISA and the metrics family. */
const char *isaName(Isa isa);

/**
 * One ISA's implementation of every dispatched microkernel. All
 * implementations of one slot are bit-identical; only speed differs.
 */
struct KernelSet
{
    Isa isa = Isa::Scalar;
    const char *name = "scalar";

    /**
     * Blocked GEMM row range: C[i][j] += sum_k A[i][k] * B[k][j] for
     * i in [i0, i1). Accumulates every C element strictly in
     * ascending k order with separate multiply and add roundings --
     * the exact arithmetic of the scalar reference loops.
     */
    void (*gemmRowRange)(const float *a, std::int64_t lda,
                         const float *b, std::int64_t ldb, float *c,
                         std::int64_t ldc, std::int64_t i0,
                         std::int64_t i1, std::int64_t depth,
                         std::int64_t n);

    /** Contiguous row copy: dst[j] = src[j] for j in [0, count). */
    void (*copyRow)(float *dst, const float *src, std::int64_t count);

    /**
     * Strided gather: dst[j] = src[j * stride] for j in [0, count).
     * The im2col packing kernel for stride > 1 windows; @p stride
     * and @p count * stride must fit an int32 (asserted).
     */
    void (*gatherRow)(float *dst, const float *src, std::int64_t count,
                      std::int64_t stride);

    /**
     * Index of the first element with v[i] < threshold, or count.
     * The Monte-Carlo fault sampler's hot scan: at realistic bit
     * error rates almost every uniform draw is >= rate, so skipping
     * the misses 4/8 doubles at a time is the whole game.
     */
    std::int64_t (*scanBelow)(const double *v, std::int64_t count,
                              double threshold);
};

/**
 * The KernelSet for @p isa, or nullptr when the build or the CPU
 * does not provide it. The scalar set always exists.
 */
const KernelSet *kernelSet(Isa isa);

/** True when kernelSet(isa) != nullptr. */
bool isaAvailable(Isa isa);

/** Every ISA available in this process, widest last. */
std::vector<Isa> availableIsas();

/**
 * The active kernel set, resolving INCA_KERNEL_ISA / auto-detection
 * on first use. Bumps the kernel.dispatch.<isa> counter.
 */
const KernelSet &active();

/** The active ISA without bumping dispatch counters. */
Isa activeIsa();

/**
 * Force the active set (test / bench hook; the programmatic
 * equivalent of INCA_KERNEL_ISA). Panics when @p isa is unavailable
 * -- callers gate on isaAvailable().
 */
void setActive(Isa isa);

/** Drop any forced ISA and re-resolve env + auto-detection. */
void resetActive();

/**
 * Parse an INCA_KERNEL_ISA value. Returns true and sets @p out for
 * "scalar" / "avx2" / "avx512"; false for anything else. Exposed for
 * tests; dispatch itself fatal()s on unparseable values.
 */
bool parseIsa(const char *text, Isa &out);

} // namespace kernels
} // namespace inca

#endif // INCA_TENSOR_KERNELS_KERNELS_HH
