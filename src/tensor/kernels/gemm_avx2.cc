/**
 * @file
 * AVX2 kernels: 8-wide float GEMM/packing, 4-wide double scan.
 *
 * Compiled with -mavx2 only when the compiler supports it (see
 * tensor/CMakeLists.txt); INCA_BUILD_AVX2 gates the body so the file
 * still builds (to an unavailable set) on other toolchains.
 *
 * Bit-identity with the scalar reference: the j loop (output
 * columns) is the only vectorized dimension, so each C element keeps
 * its serial ascending-k accumulation order, and every step is an
 * explicit _mm256_mul_ps followed by _mm256_add_ps -- two roundings,
 * exactly like the scalar `c[j] += v * b[j]`. FMA intrinsics are
 * deliberately not used: fusing would drop the intermediate
 * rounding and break 0-ULP agreement.
 */

#include "tensor/kernels/kernels.hh"

#include "common/logging.hh"

#if defined(INCA_BUILD_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace inca {
namespace kernels {

namespace {

/** One row's update c[0..n) += v * b[0..n), 8 floats per step. */
inline void
axpyRow(float *c, const float *b, float v, std::int64_t n)
{
    const __m256 vv = _mm256_set1_ps(v);
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 bv = _mm256_loadu_ps(b + j);
        _mm256_storeu_ps(
            c + j,
            _mm256_add_ps(_mm256_loadu_ps(c + j), _mm256_mul_ps(vv, bv)));
    }
    for (; j < n; ++j)
        c[j] += v * b[j];
}

void
gemmRowRangeAvx2(const float *a, std::int64_t lda, const float *b,
                 std::int64_t ldb, float *c, std::int64_t ldc,
                 std::int64_t i0, std::int64_t i1, std::int64_t depth,
                 std::int64_t n)
{
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
        const float *a0 = a + i * lda;
        const float *a1 = a0 + lda;
        const float *a2 = a1 + lda;
        const float *a3 = a2 + lda;
        float *c0 = c + i * ldc;
        float *c1 = c0 + ldc;
        float *c2 = c1 + ldc;
        float *c3 = c2 + ldc;
        for (std::int64_t k = 0; k < depth; ++k) {
            const float *br = b + k * ldb;
            const __m256 v0 = _mm256_set1_ps(a0[k]);
            const __m256 v1 = _mm256_set1_ps(a1[k]);
            const __m256 v2 = _mm256_set1_ps(a2[k]);
            const __m256 v3 = _mm256_set1_ps(a3[k]);
            std::int64_t j = 0;
            for (; j + 8 <= n; j += 8) {
                const __m256 bv = _mm256_loadu_ps(br + j);
                _mm256_storeu_ps(c0 + j,
                                 _mm256_add_ps(_mm256_loadu_ps(c0 + j),
                                               _mm256_mul_ps(v0, bv)));
                _mm256_storeu_ps(c1 + j,
                                 _mm256_add_ps(_mm256_loadu_ps(c1 + j),
                                               _mm256_mul_ps(v1, bv)));
                _mm256_storeu_ps(c2 + j,
                                 _mm256_add_ps(_mm256_loadu_ps(c2 + j),
                                               _mm256_mul_ps(v2, bv)));
                _mm256_storeu_ps(c3 + j,
                                 _mm256_add_ps(_mm256_loadu_ps(c3 + j),
                                               _mm256_mul_ps(v3, bv)));
            }
            for (; j < n; ++j) {
                const float bj = br[j];
                c0[j] += a0[k] * bj;
                c1[j] += a1[k] * bj;
                c2[j] += a2[k] * bj;
                c3[j] += a3[k] * bj;
            }
        }
    }
    for (; i < i1; ++i) {
        const float *ar = a + i * lda;
        float *cr = c + i * ldc;
        for (std::int64_t k = 0; k < depth; ++k)
            axpyRow(cr, b + k * ldb, ar[k], n);
    }
}

void
copyRowAvx2(float *dst, const float *src, std::int64_t count)
{
    std::int64_t j = 0;
    for (; j + 8 <= count; j += 8)
        _mm256_storeu_ps(dst + j, _mm256_loadu_ps(src + j));
    for (; j < count; ++j)
        dst[j] = src[j];
}

void
gatherRowAvx2(float *dst, const float *src, std::int64_t count,
              std::int64_t stride)
{
    inca_assert(stride > 0 && count * stride <= INT32_MAX,
                "gatherRow index overflow: count %lld stride %lld",
                (long long)count, (long long)stride);
    const std::int32_t s = std::int32_t(stride);
    const __m256i idx = _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s,
                                          5 * s, 6 * s, 7 * s);
    const __m256i step = _mm256_set1_epi32(8 * s);
    __m256i base = idx;
    std::int64_t j = 0;
    for (; j + 8 <= count; j += 8) {
        _mm256_storeu_ps(dst + j,
                         _mm256_i32gather_ps(src, base, 4));
        base = _mm256_add_epi32(base, step);
    }
    for (; j < count; ++j)
        dst[j] = src[j * stride];
}

std::int64_t
scanBelowAvx2(const double *v, std::int64_t count, double threshold)
{
    const __m256d thr = _mm256_set1_pd(threshold);
    std::int64_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256d vals = _mm256_loadu_pd(v + i);
        const int mask = _mm256_movemask_pd(
            _mm256_cmp_pd(vals, thr, _CMP_LT_OQ));
        if (mask != 0)
            return i + __builtin_ctz(unsigned(mask));
    }
    for (; i < count; ++i)
        if (v[i] < threshold)
            return i;
    return count;
}

} // namespace

extern const KernelSet *kAvx2Kernels;
const KernelSet kAvx2KernelsStorage = {
    Isa::Avx2,    "avx2",         &gemmRowRangeAvx2,
    &copyRowAvx2, &gatherRowAvx2, &scanBelowAvx2,
};
const KernelSet *kAvx2Kernels = &kAvx2KernelsStorage;

} // namespace kernels
} // namespace inca

#else // !INCA_BUILD_AVX2

namespace inca {
namespace kernels {

/** Toolchain cannot target AVX2: the set is absent at runtime. */
extern const KernelSet *kAvx2Kernels;
const KernelSet *kAvx2Kernels = nullptr;

} // namespace kernels
} // namespace inca

#endif
