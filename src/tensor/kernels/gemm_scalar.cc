/**
 * @file
 * Scalar reference kernels -- the retained ground truth.
 *
 * This translation unit is compiled with vectorization disabled (see
 * tensor/CMakeLists.txt): the reference must execute genuinely scalar
 * instructions so that (a) the differential rig compares the SIMD
 * paths against straight-line IEEE arithmetic and (b) the
 * BENCH_kernels.json speedup trajectory measures vector width, not
 * compiler mood. The GEMM body is the PR-1 blocked microkernel moved
 * verbatim out of tensor/ops.cc.
 */

#include "tensor/kernels/kernels.hh"

#include "common/logging.hh"

namespace inca {
namespace kernels {

namespace {

void
gemmRowRangeScalar(const float *a, std::int64_t lda, const float *b,
                   std::int64_t ldb, float *c, std::int64_t ldc,
                   std::int64_t i0, std::int64_t i1, std::int64_t depth,
                   std::int64_t n)
{
    std::int64_t i = i0;
    for (; i + 4 <= i1; i += 4) {
        const float *a0 = a + i * lda;
        const float *a1 = a0 + lda;
        const float *a2 = a1 + lda;
        const float *a3 = a2 + lda;
        float *c0 = c + i * ldc;
        float *c1 = c0 + ldc;
        float *c2 = c1 + ldc;
        float *c3 = c2 + ldc;
        for (std::int64_t k = 0; k < depth; ++k) {
            const float *br = b + k * ldb;
            const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
            for (std::int64_t j = 0; j < n; ++j) {
                const float bj = br[j];
                c0[j] += v0 * bj;
                c1[j] += v1 * bj;
                c2[j] += v2 * bj;
                c3[j] += v3 * bj;
            }
        }
    }
    for (; i < i1; ++i) {
        const float *ar = a + i * lda;
        float *cr = c + i * ldc;
        for (std::int64_t k = 0; k < depth; ++k) {
            const float v = ar[k];
            const float *br = b + k * ldb;
            for (std::int64_t j = 0; j < n; ++j)
                cr[j] += v * br[j];
        }
    }
}

void
copyRowScalar(float *dst, const float *src, std::int64_t count)
{
    for (std::int64_t j = 0; j < count; ++j)
        dst[j] = src[j];
}

void
gatherRowScalar(float *dst, const float *src, std::int64_t count,
                std::int64_t stride)
{
    inca_assert(stride > 0 && count * stride <= INT32_MAX,
                "gatherRow index overflow: count %lld stride %lld",
                (long long)count, (long long)stride);
    for (std::int64_t j = 0; j < count; ++j)
        dst[j] = src[j * stride];
}

std::int64_t
scanBelowScalar(const double *v, std::int64_t count, double threshold)
{
    for (std::int64_t i = 0; i < count; ++i)
        if (v[i] < threshold)
            return i;
    return count;
}

} // namespace

/** Looked up by dispatch.cc; not part of the public header. */
extern const KernelSet kScalarKernels;
const KernelSet kScalarKernels = {
    Isa::Scalar,     "scalar",         &gemmRowRangeScalar,
    &copyRowScalar,  &gatherRowScalar, &scanBelowScalar,
};

} // namespace kernels
} // namespace inca
