#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace inca {
namespace tensor {

std::int64_t
convOutDim(std::int64_t in, int k, const ConvSpec &spec)
{
    const std::int64_t padded = in + 2 * spec.pad;
    inca_assert(padded >= k, "window %d larger than padded input %lld", k,
                (long long)padded);
    return (padded - k) / spec.stride + 1;
}

Tensor
conv2d(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4 && w.rank() == 4, "conv2d expects 4-D x/w");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t f = w.dim(0), kh = w.dim(2), kw = w.dim(3);
    inca_assert(w.dim(1) == c, "channel mismatch: x has %lld, w has %lld",
                (long long)c, (long long)w.dim(1));
    const std::int64_t oh = convOutDim(h, int(kh), spec);
    const std::int64_t ow = convOutDim(wd, int(kw), spec);

    Tensor y({n, f, oh, ow});
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t of = 0; of < f; ++of) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    float acc = 0.0f;
                    for (std::int64_t ic = 0; ic < c; ++ic) {
                        for (std::int64_t kr = 0; kr < kh; ++kr) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            if (ir < 0 || ir >= h)
                                continue;
                            for (std::int64_t kc = 0; kc < kw; ++kc) {
                                const std::int64_t icl =
                                    ocol * spec.stride + kc - spec.pad;
                                if (icl < 0 || icl >= wd)
                                    continue;
                                acc += x.at(in, ic, ir, icl) *
                                       w.at(of, ic, kr, kc);
                            }
                        }
                    }
                    y.at(in, of, orow, ocol) = acc;
                }
            }
        }
    }
    return y;
}

Tensor
conv2dInputGrad(const Tensor &dy, const Tensor &w,
                const std::vector<std::int64_t> &xShape,
                const ConvSpec &spec)
{
    inca_assert(dy.rank() == 4 && w.rank() == 4 && xShape.size() == 4,
                "conv2dInputGrad expects 4-D operands");
    const std::int64_t n = dy.dim(0), f = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t c = xShape[1], h = xShape[2], wd = xShape[3];
    const std::int64_t kh = w.dim(2), kw = w.dim(3);
    inca_assert(w.dim(0) == f && w.dim(1) == c, "shape mismatch");

    Tensor dx(xShape);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t of = 0; of < f; ++of) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const float g = dy.at(in, of, orow, ocol);
                    if (g == 0.0f)
                        continue;
                    for (std::int64_t ic = 0; ic < c; ++ic) {
                        for (std::int64_t kr = 0; kr < kh; ++kr) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            if (ir < 0 || ir >= h)
                                continue;
                            for (std::int64_t kc = 0; kc < kw; ++kc) {
                                const std::int64_t icl =
                                    ocol * spec.stride + kc - spec.pad;
                                if (icl < 0 || icl >= wd)
                                    continue;
                                dx.at(in, ic, ir, icl) +=
                                    g * w.at(of, ic, kr, kc);
                            }
                        }
                    }
                }
            }
        }
    }
    return dx;
}

Tensor
conv2dWeightGrad(const Tensor &dy, const Tensor &x,
                 const std::vector<std::int64_t> &wShape,
                 const ConvSpec &spec)
{
    inca_assert(dy.rank() == 4 && x.rank() == 4 && wShape.size() == 4,
                "conv2dWeightGrad expects 4-D operands");
    const std::int64_t n = dy.dim(0), f = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t c = x.dim(1), h = x.dim(2), wd = x.dim(3);
    const std::int64_t kh = wShape[2], kw = wShape[3];
    inca_assert(wShape[0] == f && wShape[1] == c, "shape mismatch");

    Tensor dw(wShape);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t of = 0; of < f; ++of) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const float g = dy.at(in, of, orow, ocol);
                    if (g == 0.0f)
                        continue;
                    for (std::int64_t ic = 0; ic < c; ++ic) {
                        for (std::int64_t kr = 0; kr < kh; ++kr) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            if (ir < 0 || ir >= h)
                                continue;
                            for (std::int64_t kc = 0; kc < kw; ++kc) {
                                const std::int64_t icl =
                                    ocol * spec.stride + kc - spec.pad;
                                if (icl < 0 || icl >= wd)
                                    continue;
                                dw.at(of, ic, kr, kc) +=
                                    g * x.at(in, ic, ir, icl);
                            }
                        }
                    }
                }
            }
        }
    }
    return dw;
}

Tensor
depthwiseConv2d(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4 && w.rank() == 3,
                "depthwiseConv2d expects x rank 4, w rank 3");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t kh = w.dim(1), kw = w.dim(2);
    inca_assert(w.dim(0) == c, "depthwise channel mismatch");
    const std::int64_t oh = convOutDim(h, int(kh), spec);
    const std::int64_t ow = convOutDim(wd, int(kw), spec);

    Tensor y({n, c, oh, ow});
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    float acc = 0.0f;
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (std::int64_t kc = 0; kc < kw; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            acc += x.at(in, ic, ir, icl) *
                                   w.at(ic, kr, kc);
                        }
                    }
                    y.at(in, ic, orow, ocol) = acc;
                }
            }
        }
    }
    return y;
}

Tensor
depthwiseConv2dInputGrad(const Tensor &dy, const Tensor &w,
                         const std::vector<std::int64_t> &xShape,
                         const ConvSpec &spec)
{
    const std::int64_t n = dy.dim(0), c = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t h = xShape[2], wd = xShape[3];
    const std::int64_t kh = w.dim(1), kw = w.dim(2);

    Tensor dx(xShape);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const float g = dy.at(in, ic, orow, ocol);
                    if (g == 0.0f)
                        continue;
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (std::int64_t kc = 0; kc < kw; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            dx.at(in, ic, ir, icl) += g * w.at(ic, kr, kc);
                        }
                    }
                }
            }
        }
    }
    return dx;
}

Tensor
depthwiseConv2dWeightGrad(const Tensor &dy, const Tensor &x,
                          const std::vector<std::int64_t> &wShape,
                          const ConvSpec &spec)
{
    const std::int64_t n = dy.dim(0), c = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t h = x.dim(2), wd = x.dim(3);
    const std::int64_t kh = wShape[1], kw = wShape[2];

    Tensor dw(wShape);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const float g = dy.at(in, ic, orow, ocol);
                    if (g == 0.0f)
                        continue;
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (std::int64_t kc = 0; kc < kw; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            dw.at(ic, kr, kc) += g * x.at(in, ic, ir, icl);
                        }
                    }
                }
            }
        }
    }
    return dw;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    inca_assert(a.rank() == 2 && b.rank() == 2, "matmul expects rank 2");
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    inca_assert(b.dim(0) == k, "matmul inner dims differ: %lld vs %lld",
                (long long)k, (long long)b.dim(0));

    Tensor y({m, n});
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = a.at(i, kk);
            if (av == 0.0f)
                continue;
            for (std::int64_t j = 0; j < n; ++j)
                y.at(i, j) += av * b.at(kk, j);
        }
    }
    return y;
}

Tensor
transpose(const Tensor &a)
{
    inca_assert(a.rank() == 2, "transpose expects rank 2");
    const std::int64_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            t.at(j, i) = a.at(i, j);
    return t;
}

Tensor
im2col(const Tensor &x, int kh, int kw, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4, "im2col expects rank 4");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t oh = convOutDim(h, kh, spec);
    const std::int64_t ow = convOutDim(wd, kw, spec);

    Tensor cols({n * oh * ow, c * kh * kw});
    std::int64_t row = 0;
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t orow = 0; orow < oh; ++orow) {
            for (std::int64_t ocol = 0; ocol < ow; ++ocol, ++row) {
                std::int64_t col = 0;
                for (std::int64_t ic = 0; ic < c; ++ic) {
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        for (std::int64_t kc = 0; kc < kw; ++kc, ++col) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (ir < 0 || ir >= h || icl < 0 || icl >= wd)
                                continue;
                            cols.at(row, col) = x.at(in, ic, ir, icl);
                        }
                    }
                }
            }
        }
    }
    return cols;
}

Tensor
conv2dGemm(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    const std::int64_t n = x.dim(0);
    const std::int64_t f = w.dim(0), c = w.dim(1), kh = w.dim(2),
                       kw = w.dim(3);
    const std::int64_t oh = convOutDim(x.dim(2), int(kh), spec);
    const std::int64_t ow = convOutDim(x.dim(3), int(kw), spec);

    const Tensor cols = im2col(x, int(kh), int(kw), spec);
    // Weight matrix: [C*KH*KW, F], one unrolled kernel per column --
    // exactly how WS crossbars lay kernels out (one kernel per bitline).
    Tensor wm({c * kh * kw, f});
    for (std::int64_t of = 0; of < f; ++of) {
        std::int64_t r = 0;
        for (std::int64_t ic = 0; ic < c; ++ic)
            for (std::int64_t kr = 0; kr < kh; ++kr)
                for (std::int64_t kc = 0; kc < kw; ++kc, ++r)
                    wm.at(r, of) = w.at(of, ic, kr, kc);
    }

    const Tensor prod = matmul(cols, wm); // [N*OH*OW, F]
    Tensor y({n, f, oh, ow});
    std::int64_t row = 0;
    for (std::int64_t in = 0; in < n; ++in)
        for (std::int64_t orow = 0; orow < oh; ++orow)
            for (std::int64_t ocol = 0; ocol < ow; ++ocol, ++row)
                for (std::int64_t of = 0; of < f; ++of)
                    y.at(in, of, orow, ocol) = prod.at(row, of);
    return y;
}

Tensor
fc(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    inca_assert(x.rank() == 2 && w.rank() == 2, "fc expects rank-2 x/w");
    Tensor y = matmul(x, w);
    if (bias.size() > 0) {
        inca_assert(bias.size() == w.dim(1), "bias size mismatch");
        for (std::int64_t i = 0; i < y.dim(0); ++i)
            for (std::int64_t j = 0; j < y.dim(1); ++j)
                y.at(i, j) += bias[j];
    }
    return y;
}

Tensor
fcInputGrad(const Tensor &dy, const Tensor &w)
{
    return matmul(dy, transpose(w));
}

Tensor
fcWeightGrad(const Tensor &dy, const Tensor &x)
{
    return matmul(transpose(x), dy);
}

Tensor
fcBiasGrad(const Tensor &dy)
{
    Tensor db({dy.dim(1)});
    for (std::int64_t i = 0; i < dy.dim(0); ++i)
        for (std::int64_t j = 0; j < dy.dim(1); ++j)
            db[j] += dy.at(i, j);
    return db;
}

Tensor
relu(const Tensor &x)
{
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i)
        y[i] = std::max(0.0f, x[i]);
    return y;
}

Tensor
reluGrad(const Tensor &dy, const Tensor &x)
{
    inca_assert(dy.shape() == x.shape(), "reluGrad shape mismatch");
    Tensor dx(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i)
        dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
    return dx;
}

Tensor
sigmoid(const Tensor &x)
{
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i)
        y[i] = 1.0f / (1.0f + std::exp(-x[i]));
    return y;
}

Tensor
sigmoidGrad(const Tensor &dy, const Tensor &y)
{
    inca_assert(dy.shape() == y.shape(), "sigmoidGrad shape mismatch");
    Tensor dx(y.shape());
    for (std::int64_t i = 0; i < y.size(); ++i)
        dx[i] = dy[i] * y[i] * (1.0f - y[i]);
    return dx;
}

Tensor
tanhAct(const Tensor &x)
{
    Tensor y(x.shape());
    for (std::int64_t i = 0; i < x.size(); ++i)
        y[i] = std::tanh(x[i]);
    return y;
}

Tensor
tanhGrad(const Tensor &dy, const Tensor &y)
{
    inca_assert(dy.shape() == y.shape(), "tanhGrad shape mismatch");
    Tensor dx(y.shape());
    for (std::int64_t i = 0; i < y.size(); ++i)
        dx[i] = dy[i] * (1.0f - y[i] * y[i]);
    return dx;
}

PoolResult
maxPool2d(const Tensor &x, int k, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4, "maxPool2d expects rank 4");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t oh = convOutDim(h, k, spec);
    const std::int64_t ow = convOutDim(wd, k, spec);

    PoolResult res{Tensor({n, c, oh, ow}), Tensor({n, c, oh, ow})};
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t bestIdx = -1;
                    for (int kr = 0; kr < k; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (int kc = 0; kc < k; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            const float v = x.at(in, ic, ir, icl);
                            if (v > best) {
                                best = v;
                                bestIdx = ir * wd + icl;
                            }
                        }
                    }
                    inca_assert(bestIdx >= 0, "empty pooling window");
                    res.output.at(in, ic, orow, ocol) = best;
                    res.argmax.at(in, ic, orow, ocol) = float(bestIdx);
                }
            }
        }
    }
    return res;
}

Tensor
maxPool2dGrad(const Tensor &dy, const Tensor &argmax,
              const std::vector<std::int64_t> &xShape, int k,
              const ConvSpec &spec)
{
    (void)k;
    (void)spec;
    inca_assert(dy.shape() == argmax.shape(),
                "maxPool2dGrad shape mismatch");
    const std::int64_t n = dy.dim(0), c = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t wd = xShape[3];

    Tensor dx(xShape);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const auto flat =
                        std::int64_t(argmax.at(in, ic, orow, ocol));
                    dx.at(in, ic, flat / wd, flat % wd) +=
                        dy.at(in, ic, orow, ocol);
                }
            }
        }
    }
    return dx;
}

Tensor
globalAvgPool(const Tensor &x)
{
    inca_assert(x.rank() == 4, "globalAvgPool expects rank 4");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    Tensor y({n, c});
    const float scale = 1.0f / float(h * wd);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
            float acc = 0.0f;
            for (std::int64_t r = 0; r < h; ++r)
                for (std::int64_t cl = 0; cl < wd; ++cl)
                    acc += x.at(in, ic, r, cl);
            y.at(in, ic) = acc * scale;
        }
    }
    return y;
}

Tensor
globalAvgPoolGrad(const Tensor &dy, const std::vector<std::int64_t> &xShape)
{
    const std::int64_t n = xShape[0], c = xShape[1], h = xShape[2],
                       wd = xShape[3];
    Tensor dx(xShape);
    const float scale = 1.0f / float(h * wd);
    for (std::int64_t in = 0; in < n; ++in)
        for (std::int64_t ic = 0; ic < c; ++ic)
            for (std::int64_t r = 0; r < h; ++r)
                for (std::int64_t cl = 0; cl < wd; ++cl)
                    dx.at(in, ic, r, cl) = dy.at(in, ic) * scale;
    return dx;
}

Tensor
softmax(const Tensor &logits)
{
    inca_assert(logits.rank() == 2, "softmax expects rank 2");
    const std::int64_t n = logits.dim(0), f = logits.dim(1);
    Tensor p({n, f});
    for (std::int64_t i = 0; i < n; ++i) {
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t j = 0; j < f; ++j)
            mx = std::max(mx, logits.at(i, j));
        double denom = 0.0;
        for (std::int64_t j = 0; j < f; ++j) {
            const float e = std::exp(logits.at(i, j) - mx);
            p.at(i, j) = e;
            denom += e;
        }
        for (std::int64_t j = 0; j < f; ++j)
            p.at(i, j) = float(p.at(i, j) / denom);
    }
    return p;
}

LossResult
crossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    const std::int64_t n = logits.dim(0), f = logits.dim(1);
    inca_assert(std::int64_t(labels.size()) == n,
                "label count %zu != batch %lld", labels.size(),
                (long long)n);

    const Tensor p = softmax(logits);
    LossResult res;
    res.grad = Tensor({n, f});
    double loss = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const int label = labels[size_t(i)];
        inca_assert(label >= 0 && label < f, "label %d out of range",
                    label);
        loss -= std::log(std::max(p.at(i, label), 1e-12f));
        for (std::int64_t j = 0; j < f; ++j) {
            res.grad.at(i, j) =
                (p.at(i, j) - (j == label ? 1.0f : 0.0f)) / float(n);
        }
    }
    res.loss = loss / double(n);
    return res;
}

LossResult
l2Loss(const Tensor &outputs, const std::vector<int> &labels)
{
    const std::int64_t n = outputs.dim(0), f = outputs.dim(1);
    inca_assert(std::int64_t(labels.size()) == n,
                "label count %zu != batch %lld", labels.size(),
                (long long)n);
    LossResult res;
    res.grad = Tensor({n, f});
    double loss = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const int label = labels[size_t(i)];
        inca_assert(label >= 0 && label < f, "label %d out of range",
                    label);
        for (std::int64_t j = 0; j < f; ++j) {
            const float target = j == label ? 1.0f : 0.0f;
            const float diff = outputs.at(i, j) - target;
            loss += 0.5 * double(diff) * double(diff);
            res.grad.at(i, j) = diff / float(n);
        }
    }
    res.loss = loss / double(n);
    return res;
}

int
countCorrect(const Tensor &logits, const std::vector<int> &labels)
{
    const std::int64_t n = logits.dim(0), f = logits.dim(1);
    int correct = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < f; ++j) {
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        }
        if (best == labels[size_t(i)])
            ++correct;
    }
    return correct;
}

} // namespace tensor
} // namespace inca
