#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/arena.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "tensor/kernels/kernels.hh"

namespace inca {
namespace tensor {

std::int64_t
convOutDim(std::int64_t in, int k, const ConvSpec &spec)
{
    const std::int64_t padded = in + 2 * spec.pad;
    inca_assert(padded >= k, "window %d larger than padded input %lld", k,
                (long long)padded);
    return (padded - k) / spec.stride + 1;
}

namespace {

// The blocked GEMM row-range microkernel (deterministic ascending-k
// accumulation per C element, the property cross-thread and
// cross-ISA bit-identity rests on) lives in tensor/kernels/ now, one
// implementation per instruction set; kernels::active() picks the
// widest one the CPU supports. Callers hoist the KernelSet once per
// op so a conv counts as one dispatch, not one per pool task.

/** Filters handled per GEMM task (batch x filter-block fan-out). */
constexpr std::int64_t kFilterBlock = 16;

/**
 * Shared convolution engine: y[in][of][pix] = sum_k wFlat[of][k] *
 * colsT[in][k][pix], where colsT is the transposed im2col of one
 * image (k = (ic, kr, kc) ascending -- the naive accumulation order)
 * and wFlat is the [F, C*KH*KW] row-major view of the kernels.
 *
 * Phase 1 packs colsT for all images in parallel (disjoint rows);
 * phase 2 fans the GEMM over batch x filter blocks (disjoint output
 * slices). Out-of-window taps stay exact zeros, reproducing the
 * naive loops' skipped contributions.
 *
 * @p oh / @p ow are passed in rather than derived so callers can
 * request asymmetric overhang (transposed convolution needs up to
 * stride-1 extra rows at the bottom/right -- "output padding"); the
 * bounds checks treat any overhang as zeros.
 */
Tensor
convViaGemm(const float *xData, std::int64_t n, std::int64_t c,
            std::int64_t h, std::int64_t wd, const float *wFlat,
            std::int64_t f, std::int64_t kh, std::int64_t kw,
            int stride, int padH, int padW, std::int64_t oh,
            std::int64_t ow)
{
    const std::int64_t depth = c * kh * kw;
    const std::int64_t pix = oh * ow;
    const kernels::KernelSet &ks = kernels::active();

    // Packed im2col workspace. Zeroed lease: out-of-window taps must
    // stay exact zeros, reproducing the naive loops' skipped
    // contributions. Each (image, k) row copies its valid column
    // range in one shot -- the window bounds are affine in ocol, so
    // the per-element bounds checks of the scalar era collapse into
    // an interval [jBegin, jEnd) and one copyRow/gatherRow call.
    arena::ScratchLease colsT =
        arena::scratchFloats(std::size_t(n * depth * pix), true);
    parallel_for(n * depth, 8, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
            const std::int64_t in = idx / depth;
            const std::int64_t k = idx % depth;
            const std::int64_t ic = k / (kh * kw);
            const std::int64_t kr = (k / kw) % kh;
            const std::int64_t kc = k % kw;
            const float *xp = xData + ((in * c + ic) * h) * wd;
            float *dst = colsT.data() + idx * pix;

            // Valid ocol satisfy 0 <= ocol*stride + off < wd.
            const std::int64_t off = kc - padW;
            const std::int64_t jBegin =
                off >= 0 ? 0 : (-off + stride - 1) / stride;
            const std::int64_t jEnd =
                wd - 1 - off < 0
                    ? 0
                    : std::min(ow, (wd - 1 - off) / stride + 1);
            if (jBegin >= jEnd)
                continue;
            const std::int64_t count = jEnd - jBegin;

            for (std::int64_t orow = 0; orow < oh; ++orow) {
                const std::int64_t ir = orow * stride + kr - padH;
                if (ir < 0 || ir >= h)
                    continue;
                const float *src =
                    xp + ir * wd + jBegin * stride + off;
                float *drow = dst + orow * ow + jBegin;
                if (stride == 1)
                    ks.copyRow(drow, src, count);
                else
                    ks.gatherRow(drow, src, count, stride);
            }
        }
    });

    Tensor y({n, f, oh, ow});
    const std::int64_t nfb = (f + kFilterBlock - 1) / kFilterBlock;
    parallel_for(n * nfb, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t t = lo; t < hi; ++t) {
            const std::int64_t in = t / nfb;
            const std::int64_t f0 = (t % nfb) * kFilterBlock;
            const std::int64_t f1 = std::min(f0 + kFilterBlock, f);
            ks.gemmRowRange(wFlat, depth,
                            colsT.data() + in * depth * pix, pix,
                            y.data() + in * f * pix, pix, f0, f1,
                            depth, pix);
        }
    });
    return y;
}

/**
 * Naive-order input gradient for ONE image: identical loops (and thus
 * identical float accumulation order) to conv2dInputGradNaive, but
 * scoped to the disjoint dx slice of image @p in so images can run in
 * parallel.
 */
void
inputGradImage(Tensor &dx, const Tensor &dy, const Tensor &w,
               std::int64_t in, const ConvSpec &spec)
{
    const std::int64_t f = dy.dim(1), oh = dy.dim(2), ow = dy.dim(3);
    const std::int64_t c = dx.dim(1), h = dx.dim(2), wd = dx.dim(3);
    const std::int64_t kh = w.dim(2), kw = w.dim(3);
    for (std::int64_t of = 0; of < f; ++of) {
        for (std::int64_t orow = 0; orow < oh; ++orow) {
            for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                const float g = dy.at(in, of, orow, ocol);
                if (g == 0.0f)
                    continue;
                for (std::int64_t ic = 0; ic < c; ++ic) {
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (std::int64_t kc = 0; kc < kw; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            dx.at(in, ic, ir, icl) +=
                                g * w.at(of, ic, kr, kc);
                        }
                    }
                }
            }
        }
    }
}

} // namespace

Tensor
conv2dNaive(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4 && w.rank() == 4, "conv2d expects 4-D x/w");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t f = w.dim(0), kh = w.dim(2), kw = w.dim(3);
    inca_assert(w.dim(1) == c, "channel mismatch: x has %lld, w has %lld",
                (long long)c, (long long)w.dim(1));
    const std::int64_t oh = convOutDim(h, int(kh), spec);
    const std::int64_t ow = convOutDim(wd, int(kw), spec);

    Tensor y({n, f, oh, ow});
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t of = 0; of < f; ++of) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    float acc = 0.0f;
                    for (std::int64_t ic = 0; ic < c; ++ic) {
                        for (std::int64_t kr = 0; kr < kh; ++kr) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            if (ir < 0 || ir >= h)
                                continue;
                            for (std::int64_t kc = 0; kc < kw; ++kc) {
                                const std::int64_t icl =
                                    ocol * spec.stride + kc - spec.pad;
                                if (icl < 0 || icl >= wd)
                                    continue;
                                acc += x.at(in, ic, ir, icl) *
                                       w.at(of, ic, kr, kc);
                            }
                        }
                    }
                    y.at(in, of, orow, ocol) = acc;
                }
            }
        }
    }
    return y;
}

Tensor
conv2d(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4 && w.rank() == 4, "conv2d expects 4-D x/w");
    inca_assert(w.dim(1) == x.dim(1),
                "channel mismatch: x has %lld, w has %lld",
                (long long)x.dim(1), (long long)w.dim(1));
    // w is [F, C, KH, KW] row-major, i.e. already the [F, C*KH*KW]
    // weight matrix the GEMM wants -- one unrolled kernel per row,
    // exactly how WS crossbars lay kernels out (one kernel per
    // bitline).
    return convViaGemm(x.data(), x.dim(0), x.dim(1), x.dim(2),
                       x.dim(3), w.data(), w.dim(0), w.dim(2),
                       w.dim(3), spec.stride, spec.pad, spec.pad,
                       convOutDim(x.dim(2), int(w.dim(2)), spec),
                       convOutDim(x.dim(3), int(w.dim(3)), spec));
}

Tensor
conv2dInputGradNaive(const Tensor &dy, const Tensor &w,
                     const std::vector<std::int64_t> &xShape,
                     const ConvSpec &spec)
{
    inca_assert(dy.rank() == 4 && w.rank() == 4 && xShape.size() == 4,
                "conv2dInputGrad expects 4-D operands");
    const std::int64_t n = dy.dim(0), f = dy.dim(1);
    const std::int64_t c = xShape[1];
    inca_assert(w.dim(0) == f && w.dim(1) == c, "shape mismatch");

    Tensor dx(xShape);
    for (std::int64_t in = 0; in < n; ++in)
        inputGradImage(dx, dy, w, in, spec);
    return dx;
}

Tensor
conv2dInputGrad(const Tensor &dy, const Tensor &w,
                const std::vector<std::int64_t> &xShape,
                const ConvSpec &spec)
{
    inca_assert(dy.rank() == 4 && w.rank() == 4 && xShape.size() == 4,
                "conv2dInputGrad expects 4-D operands");
    const std::int64_t n = dy.dim(0), f = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t c = xShape[1], h = xShape[2], wd = xShape[3];
    const std::int64_t kh = w.dim(2), kw = w.dim(3);
    inca_assert(w.dim(0) == f && w.dim(1) == c, "shape mismatch");

    // Transposed-convolution route: dilate dy by the stride, flip the
    // kernel spatially, swap its filter/channel axes, and push it
    // through the forward GEMM engine at stride 1, asking for exactly
    // x's spatial dims (the engine zero-extends the bottom/right
    // overhang a non-tiling stride leaves). The engine's column order
    // (of ascending, then flipped taps ascending = orow, ocol
    // ascending) reproduces the naive scatter's accumulation order
    // exactly; the dilation/padding zeros contribute exact zeros.
    // Padding beyond the kernel falls back to the naive-order
    // per-image loops, parallel over the batch.
    const int padH = int(kh) - 1 - spec.pad;
    const int padW = int(kw) - 1 - spec.pad;
    if (padH < 0 || padW < 0) {
        Tensor dx(xShape);
        parallel_for(n, 1, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t in = lo; in < hi; ++in)
                inputGradImage(dx, dy, w, in, spec);
        });
        return dx;
    }

    const float *srcData = dy.data();
    std::int64_t srcH = oh, srcW = ow;
    arena::ScratchLease dilated;
    if (spec.stride > 1) {
        const std::int64_t hd = (oh - 1) * spec.stride + 1;
        const std::int64_t wdd = (ow - 1) * spec.stride + 1;
        // Zeroed lease: the gaps between scattered dy taps must be
        // exact zeros (they are the dilation).
        dilated =
            arena::scratchFloats(std::size_t(n * f * hd * wdd), true);
        parallel_for(n * f, 4, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t plane = lo; plane < hi; ++plane) {
                const float *s = dy.data() + plane * oh * ow;
                float *d = dilated.data() + plane * hd * wdd;
                for (std::int64_t orow = 0; orow < oh; ++orow)
                    for (std::int64_t ocol = 0; ocol < ow; ++ocol)
                        d[orow * spec.stride * wdd +
                          ocol * spec.stride] = s[orow * ow + ocol];
            }
        });
        srcData = dilated.data();
        srcH = hd;
        srcW = wdd;
    }

    // wT[ic][of][a][b] = w[of][ic][kh-1-a][kw-1-b]. Unzeroed lease:
    // every element is written below.
    arena::ScratchLease wT =
        arena::scratchFloats(std::size_t(c * f * kh * kw), false);
    parallel_for(c * f, 16, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t cf = lo; cf < hi; ++cf) {
            const std::int64_t ic = cf / f;
            const std::int64_t of = cf % f;
            const float *wsrc = w.data() + (of * c + ic) * kh * kw;
            float *wdst = wT.data() + cf * kh * kw;
            for (std::int64_t a = 0; a < kh; ++a)
                for (std::int64_t b = 0; b < kw; ++b)
                    wdst[a * kw + b] =
                        wsrc[(kh - 1 - a) * kw + (kw - 1 - b)];
        }
    });

    return convViaGemm(srcData, n, f, srcH, srcW, wT.data(), c, kh,
                       kw, 1, padH, padW, h, wd);
}

Tensor
conv2dWeightGradNaive(const Tensor &dy, const Tensor &x,
                      const std::vector<std::int64_t> &wShape,
                      const ConvSpec &spec)
{
    inca_assert(dy.rank() == 4 && x.rank() == 4 && wShape.size() == 4,
                "conv2dWeightGrad expects 4-D operands");
    const std::int64_t n = dy.dim(0), f = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t c = x.dim(1), h = x.dim(2), wd = x.dim(3);
    const std::int64_t kh = wShape[2], kw = wShape[3];
    inca_assert(wShape[0] == f && wShape[1] == c, "shape mismatch");

    Tensor dw(wShape);
    for (std::int64_t in = 0; in < n; ++in) {
        for (std::int64_t of = 0; of < f; ++of) {
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const float g = dy.at(in, of, orow, ocol);
                    if (g == 0.0f)
                        continue;
                    for (std::int64_t ic = 0; ic < c; ++ic) {
                        for (std::int64_t kr = 0; kr < kh; ++kr) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            if (ir < 0 || ir >= h)
                                continue;
                            for (std::int64_t kc = 0; kc < kw; ++kc) {
                                const std::int64_t icl =
                                    ocol * spec.stride + kc - spec.pad;
                                if (icl < 0 || icl >= wd)
                                    continue;
                                dw.at(of, ic, kr, kc) +=
                                    g * x.at(in, ic, ir, icl);
                            }
                        }
                    }
                }
            }
        }
    }
    return dw;
}

Tensor
conv2dWeightGrad(const Tensor &dy, const Tensor &x,
                 const std::vector<std::int64_t> &wShape,
                 const ConvSpec &spec)
{
    inca_assert(dy.rank() == 4 && x.rank() == 4 && wShape.size() == 4,
                "conv2dWeightGrad expects 4-D operands");
    const std::int64_t n = dy.dim(0), f = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t c = x.dim(1);
    const std::int64_t kh = wShape[2], kw = wShape[3];
    inca_assert(wShape[0] == f && wShape[1] == c, "shape mismatch");

    // dw[of][k] = sum_row dyT[of][row] * cols[row][k], rows ascending
    // in (image, orow, ocol) -- the naive loops' contribution order
    // for every dw element (the of loop sits between in and orow
    // there, which cannot reorder a fixed of's contributions).
    const std::int64_t pix = oh * ow;
    const std::int64_t rows = n * pix;
    const std::int64_t depth = c * kh * kw;

    const Tensor cols = im2col(x, int(kh), int(kw), spec); // [rows, depth]
    const kernels::KernelSet &ks = kernels::active();

    // dyT[of][row]: gather the NCHW dy into filter-major order.
    // Unzeroed lease: every element is written below.
    arena::ScratchLease dyT =
        arena::scratchFloats(std::size_t(f * rows), false);
    parallel_for(f, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t of = lo; of < hi; ++of) {
            float *dst = dyT.data() + of * rows;
            for (std::int64_t in = 0; in < n; ++in)
                ks.copyRow(dst + in * pix,
                           dy.data() + (in * f + of) * pix, pix);
        }
    });

    Tensor dw(wShape); // [f][depth] row-major, zero-filled
    const std::int64_t nfb = (f + kFilterBlock - 1) / kFilterBlock;
    parallel_for(nfb, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t t = lo; t < hi; ++t) {
            const std::int64_t f0 = t * kFilterBlock;
            const std::int64_t f1 = std::min(f0 + kFilterBlock, f);
            ks.gemmRowRange(dyT.data(), rows, cols.data(), depth,
                            dw.data(), depth, f0, f1, rows, depth);
        }
    });
    return dw;
}

Tensor
depthwiseConv2d(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4 && w.rank() == 3,
                "depthwiseConv2d expects x rank 4, w rank 3");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t kh = w.dim(1), kw = w.dim(2);
    inca_assert(w.dim(0) == c, "depthwise channel mismatch");
    const std::int64_t oh = convOutDim(h, int(kh), spec);
    const std::int64_t ow = convOutDim(wd, int(kw), spec);

    Tensor y({n, c, oh, ow});
    parallel_for(n * c, 2, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t plane = lo; plane < hi; ++plane) {
            const std::int64_t in = plane / c;
            const std::int64_t ic = plane % c;
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    float acc = 0.0f;
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (std::int64_t kc = 0; kc < kw; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            acc += x.at(in, ic, ir, icl) *
                                   w.at(ic, kr, kc);
                        }
                    }
                    y.at(in, ic, orow, ocol) = acc;
                }
            }
        }
    });
    return y;
}

Tensor
depthwiseConv2dInputGrad(const Tensor &dy, const Tensor &w,
                         const std::vector<std::int64_t> &xShape,
                         const ConvSpec &spec)
{
    const std::int64_t n = dy.dim(0), c = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t h = xShape[2], wd = xShape[3];
    const std::int64_t kh = w.dim(1), kw = w.dim(2);

    Tensor dx(xShape);
    parallel_for(n * c, 2, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t plane = lo; plane < hi; ++plane) {
            const std::int64_t in = plane / c;
            const std::int64_t ic = plane % c;
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const float g = dy.at(in, ic, orow, ocol);
                    if (g == 0.0f)
                        continue;
                    for (std::int64_t kr = 0; kr < kh; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (std::int64_t kc = 0; kc < kw; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            dx.at(in, ic, ir, icl) += g * w.at(ic, kr, kc);
                        }
                    }
                }
            }
        }
    });
    return dx;
}

Tensor
depthwiseConv2dWeightGrad(const Tensor &dy, const Tensor &x,
                          const std::vector<std::int64_t> &wShape,
                          const ConvSpec &spec)
{
    const std::int64_t n = dy.dim(0), c = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t h = x.dim(2), wd = x.dim(3);
    const std::int64_t kh = wShape[1], kw = wShape[2];

    Tensor dw(wShape);
    // Each channel's dw slice accumulates over (image, orow, ocol) in
    // the original order; channels partition the output.
    parallel_for(c, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t ic = lo; ic < hi; ++ic) {
            for (std::int64_t in = 0; in < n; ++in) {
                for (std::int64_t orow = 0; orow < oh; ++orow) {
                    for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                        const float g = dy.at(in, ic, orow, ocol);
                        if (g == 0.0f)
                            continue;
                        for (std::int64_t kr = 0; kr < kh; ++kr) {
                            const std::int64_t ir =
                                orow * spec.stride + kr - spec.pad;
                            if (ir < 0 || ir >= h)
                                continue;
                            for (std::int64_t kc = 0; kc < kw; ++kc) {
                                const std::int64_t icl =
                                    ocol * spec.stride + kc - spec.pad;
                                if (icl < 0 || icl >= wd)
                                    continue;
                                dw.at(ic, kr, kc) +=
                                    g * x.at(in, ic, ir, icl);
                            }
                        }
                    }
                }
            }
        }
    });
    return dw;
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    inca_assert(a.rank() == 2 && b.rank() == 2, "matmul expects rank 2");
    const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    inca_assert(b.dim(0) == k, "matmul inner dims differ: %lld vs %lld",
                (long long)k, (long long)b.dim(0));

    Tensor y({m, n});
    const kernels::KernelSet &ks = kernels::active();
    parallel_for(m, 4, [&](std::int64_t lo, std::int64_t hi) {
        ks.gemmRowRange(a.data(), k, b.data(), n, y.data(), n, lo, hi,
                        k, n);
    });
    return y;
}

Tensor
transpose(const Tensor &a)
{
    inca_assert(a.rank() == 2, "transpose expects rank 2");
    const std::int64_t m = a.dim(0), n = a.dim(1);
    Tensor t({n, m});
    parallel_for(m, 64, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            for (std::int64_t j = 0; j < n; ++j)
                t.at(j, i) = a.at(i, j);
    });
    return t;
}

Tensor
im2col(const Tensor &x, int kh, int kw, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4, "im2col expects rank 4");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t oh = convOutDim(h, kh, spec);
    const std::int64_t ow = convOutDim(wd, kw, spec);
    const std::int64_t depth = c * std::int64_t(kh) * kw;

    Tensor cols({n * oh * ow, depth});
    parallel_for(n * oh * ow, 32, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t row = lo; row < hi; ++row) {
            const std::int64_t in = row / (oh * ow);
            const std::int64_t orow = (row / ow) % oh;
            const std::int64_t ocol = row % ow;
            float *dst = cols.data() + row * depth;
            std::int64_t col = 0;
            for (std::int64_t ic = 0; ic < c; ++ic) {
                const float *xp = x.data() + ((in * c + ic) * h) * wd;
                for (std::int64_t kr = 0; kr < kh; ++kr) {
                    const std::int64_t ir =
                        orow * spec.stride + kr - spec.pad;
                    for (std::int64_t kc = 0; kc < kw; ++kc, ++col) {
                        const std::int64_t icl =
                            ocol * spec.stride + kc - spec.pad;
                        if (ir < 0 || ir >= h || icl < 0 || icl >= wd)
                            continue;
                        dst[col] = xp[ir * wd + icl];
                    }
                }
            }
        }
    });
    return cols;
}

Tensor
conv2dGemm(const Tensor &x, const Tensor &w, const ConvSpec &spec)
{
    // The unrolled WS-crossbar dataflow IS the production path now;
    // the name is kept for the paper-facing call sites and tests.
    return conv2d(x, w, spec);
}

Tensor
fc(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    inca_assert(x.rank() == 2 && w.rank() == 2, "fc expects rank-2 x/w");
    Tensor y = matmul(x, w);
    if (bias.size() > 0) {
        inca_assert(bias.size() == w.dim(1), "bias size mismatch");
        for (std::int64_t i = 0; i < y.dim(0); ++i)
            for (std::int64_t j = 0; j < y.dim(1); ++j)
                y.at(i, j) += bias[j];
    }
    return y;
}

Tensor
fcInputGrad(const Tensor &dy, const Tensor &w)
{
    return matmul(dy, transpose(w));
}

Tensor
fcWeightGrad(const Tensor &dy, const Tensor &x)
{
    return matmul(transpose(x), dy);
}

Tensor
fcBiasGrad(const Tensor &dy)
{
    Tensor db({dy.dim(1)});
    for (std::int64_t i = 0; i < dy.dim(0); ++i)
        for (std::int64_t j = 0; j < dy.dim(1); ++j)
            db[j] += dy.at(i, j);
    return db;
}

namespace {

/** Elementwise-map grain: below this size threads cost more than they
 * save. */
constexpr std::int64_t kMapGrain = 16384;

} // namespace

Tensor
relu(const Tensor &x)
{
    Tensor y(x.shape());
    parallel_for(x.size(), kMapGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         y[i] = std::max(0.0f, x[i]);
                 });
    return y;
}

Tensor
reluGrad(const Tensor &dy, const Tensor &x)
{
    inca_assert(dy.shape() == x.shape(), "reluGrad shape mismatch");
    Tensor dx(x.shape());
    parallel_for(x.size(), kMapGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
                 });
    return dx;
}

Tensor
sigmoid(const Tensor &x)
{
    Tensor y(x.shape());
    parallel_for(x.size(), kMapGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         y[i] = 1.0f / (1.0f + std::exp(-x[i]));
                 });
    return y;
}

Tensor
sigmoidGrad(const Tensor &dy, const Tensor &y)
{
    inca_assert(dy.shape() == y.shape(), "sigmoidGrad shape mismatch");
    Tensor dx(y.shape());
    parallel_for(y.size(), kMapGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         dx[i] = dy[i] * y[i] * (1.0f - y[i]);
                 });
    return dx;
}

Tensor
tanhAct(const Tensor &x)
{
    Tensor y(x.shape());
    parallel_for(x.size(), kMapGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         y[i] = std::tanh(x[i]);
                 });
    return y;
}

Tensor
tanhGrad(const Tensor &dy, const Tensor &y)
{
    inca_assert(dy.shape() == y.shape(), "tanhGrad shape mismatch");
    Tensor dx(y.shape());
    parallel_for(y.size(), kMapGrain,
                 [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                         dx[i] = dy[i] * (1.0f - y[i] * y[i]);
                 });
    return dx;
}

PoolResult
maxPool2d(const Tensor &x, int k, const ConvSpec &spec)
{
    inca_assert(x.rank() == 4, "maxPool2d expects rank 4");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    const std::int64_t oh = convOutDim(h, k, spec);
    const std::int64_t ow = convOutDim(wd, k, spec);

    PoolResult res{Tensor({n, c, oh, ow}), Tensor({n, c, oh, ow})};
    parallel_for(n * c, 2, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t plane = lo; plane < hi; ++plane) {
            const std::int64_t in = plane / c;
            const std::int64_t ic = plane % c;
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t bestIdx = -1;
                    for (int kr = 0; kr < k; ++kr) {
                        const std::int64_t ir =
                            orow * spec.stride + kr - spec.pad;
                        if (ir < 0 || ir >= h)
                            continue;
                        for (int kc = 0; kc < k; ++kc) {
                            const std::int64_t icl =
                                ocol * spec.stride + kc - spec.pad;
                            if (icl < 0 || icl >= wd)
                                continue;
                            const float v = x.at(in, ic, ir, icl);
                            if (v > best) {
                                best = v;
                                bestIdx = ir * wd + icl;
                            }
                        }
                    }
                    inca_assert(bestIdx >= 0, "empty pooling window");
                    res.output.at(in, ic, orow, ocol) = best;
                    res.argmax.at(in, ic, orow, ocol) = float(bestIdx);
                }
            }
        }
    });
    return res;
}

Tensor
maxPool2dGrad(const Tensor &dy, const Tensor &argmax,
              const std::vector<std::int64_t> &xShape, int k,
              const ConvSpec &spec)
{
    (void)k;
    (void)spec;
    inca_assert(dy.shape() == argmax.shape(),
                "maxPool2dGrad shape mismatch");
    const std::int64_t n = dy.dim(0), c = dy.dim(1), oh = dy.dim(2),
                       ow = dy.dim(3);
    const std::int64_t wd = xShape[3];

    Tensor dx(xShape);
    parallel_for(n * c, 2, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t plane = lo; plane < hi; ++plane) {
            const std::int64_t in = plane / c;
            const std::int64_t ic = plane % c;
            for (std::int64_t orow = 0; orow < oh; ++orow) {
                for (std::int64_t ocol = 0; ocol < ow; ++ocol) {
                    const auto flat =
                        std::int64_t(argmax.at(in, ic, orow, ocol));
                    dx.at(in, ic, flat / wd, flat % wd) +=
                        dy.at(in, ic, orow, ocol);
                }
            }
        }
    });
    return dx;
}

Tensor
globalAvgPool(const Tensor &x)
{
    inca_assert(x.rank() == 4, "globalAvgPool expects rank 4");
    const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2),
                       wd = x.dim(3);
    Tensor y({n, c});
    const float scale = 1.0f / float(h * wd);
    parallel_for(n * c, 8, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t plane = lo; plane < hi; ++plane) {
            const float *xp = x.data() + plane * h * wd;
            float acc = 0.0f;
            for (std::int64_t i = 0; i < h * wd; ++i)
                acc += xp[i];
            y[plane] = acc * scale;
        }
    });
    return y;
}

Tensor
globalAvgPoolGrad(const Tensor &dy, const std::vector<std::int64_t> &xShape)
{
    const std::int64_t n = xShape[0], c = xShape[1], h = xShape[2],
                       wd = xShape[3];
    Tensor dx(xShape);
    const float scale = 1.0f / float(h * wd);
    parallel_for(n * c, 8, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t plane = lo; plane < hi; ++plane) {
            const float g = dy[plane] * scale;
            float *d = dx.data() + plane * h * wd;
            for (std::int64_t i = 0; i < h * wd; ++i)
                d[i] = g;
        }
    });
    return dx;
}

Tensor
softmax(const Tensor &logits)
{
    inca_assert(logits.rank() == 2, "softmax expects rank 2");
    const std::int64_t n = logits.dim(0), f = logits.dim(1);
    Tensor p({n, f});
    for (std::int64_t i = 0; i < n; ++i) {
        float mx = -std::numeric_limits<float>::infinity();
        for (std::int64_t j = 0; j < f; ++j)
            mx = std::max(mx, logits.at(i, j));
        double denom = 0.0;
        for (std::int64_t j = 0; j < f; ++j) {
            const float e = std::exp(logits.at(i, j) - mx);
            p.at(i, j) = e;
            denom += e;
        }
        for (std::int64_t j = 0; j < f; ++j)
            p.at(i, j) = float(p.at(i, j) / denom);
    }
    return p;
}

LossResult
crossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    const std::int64_t n = logits.dim(0), f = logits.dim(1);
    inca_assert(std::int64_t(labels.size()) == n,
                "label count %zu != batch %lld", labels.size(),
                (long long)n);

    const Tensor p = softmax(logits);
    LossResult res;
    res.grad = Tensor({n, f});
    double loss = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const int label = labels[size_t(i)];
        inca_assert(label >= 0 && label < f, "label %d out of range",
                    label);
        loss -= std::log(std::max(p.at(i, label), 1e-12f));
        for (std::int64_t j = 0; j < f; ++j) {
            res.grad.at(i, j) =
                (p.at(i, j) - (j == label ? 1.0f : 0.0f)) / float(n);
        }
    }
    res.loss = loss / double(n);
    return res;
}

LossResult
l2Loss(const Tensor &outputs, const std::vector<int> &labels)
{
    const std::int64_t n = outputs.dim(0), f = outputs.dim(1);
    inca_assert(std::int64_t(labels.size()) == n,
                "label count %zu != batch %lld", labels.size(),
                (long long)n);
    LossResult res;
    res.grad = Tensor({n, f});
    double loss = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const int label = labels[size_t(i)];
        inca_assert(label >= 0 && label < f, "label %d out of range",
                    label);
        for (std::int64_t j = 0; j < f; ++j) {
            const float target = j == label ? 1.0f : 0.0f;
            const float diff = outputs.at(i, j) - target;
            loss += 0.5 * double(diff) * double(diff);
            res.grad.at(i, j) = diff / float(n);
        }
    }
    res.loss = loss / double(n);
    return res;
}

int
countCorrect(const Tensor &logits, const std::vector<int> &labels)
{
    const std::int64_t n = logits.dim(0), f = logits.dim(1);
    int correct = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t best = 0;
        for (std::int64_t j = 1; j < f; ++j) {
            if (logits.at(i, j) > logits.at(i, best))
                best = j;
        }
        if (best == labels[size_t(i)])
            ++correct;
    }
    return correct;
}

} // namespace tensor
} // namespace inca
