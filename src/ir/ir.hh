/**
 * @file
 * The lowering IR: a typed instruction stream over named on-chip
 * resources, shared by the analytic engines and the event-driven
 * timing backend.
 *
 * A Program is a flat, topologically ordered list of instructions
 * (every dependency points strictly backwards) grouped into spans.
 * One span corresponds to one arch::LayerCost of the analytic
 * engines' RunCost -- except synthetic spans (pipeline fill/drain
 * placeholders), which carry latency but no layer row. The key
 * contract, enforced by tests/test_event_backend.cc:
 *
 *  - collapseSpan() folds a span back into the exact LayerCost the
 *    analytic engine used to compute: stats merge in instruction
 *    order (preserving the per-key addition order of the original
 *    engine code), and latency is the span's internal critical path;
 *  - analyticWalk() reproduces the engine's program-order latency
 *    accumulation bit-exactly -- it IS the analytic engine, consuming
 *    the instruction stream instead of ad-hoc per-layer math;
 *  - the event backend (src/event) executes the same instructions
 *    through a dependency-driven event queue; with overlap disabled
 *    its schedule folds to the identical floating-point additions, so
 *    the two backends agree to the last ULP.
 *
 * Off-critical spans model work the analytic engine reports per layer
 * but keeps off the run makespan (the WS training pipeline hides the
 * per-layer passes behind fill + drain); the event backend excludes
 * them from the exit sync for the same reason.
 */

#ifndef INCA_IR_IR_HH
#define INCA_IR_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/cost.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "nn/layer.hh"

namespace inca {
namespace ir {

/** Instruction opcode. */
enum class Op
{
    Load,       ///< stream weights/inputs through buffer or DRAM
    Mvm,        ///< analog matrix-vector multiply (array reads)
    Move,       ///< write results into arrays / write-back path
    Activation, ///< digital post-processing (ReLU, pool, add)
    Reduce,     ///< ADC conversion + shift-accumulate / adder tree
    Sync,       ///< join point; no work, no stats
};

/** Named on-chip resource an instruction occupies. */
enum class Unit
{
    Dram,
    Buffer,
    Array,
    Adc,
    Digital,
    Pipeline, ///< abstract inter-layer pipeline (fill/drain spans)
    Ctrl,     ///< sequencer (sync instructions)
};

const char *opName(Op op);
const char *unitName(Unit unit);

/** Reverse of unitName ("dram" -> Unit::Dram); false when unknown. */
bool unitByName(const std::string &name, Unit &out);

/** One typed instruction. */
struct Instr
{
    Op op = Op::Sync;
    Unit unit = Unit::Ctrl;
    std::string label;      ///< presentation only ("mvm conv1")
    int span = -1;          ///< owning span index
    std::vector<int> deps;  ///< global indices, strictly < own index
    Seconds duration = 0.0; ///< busy time on `unit`
    StatSet stats;          ///< energy.* / count.* charged when run
    std::vector<std::string> reads;  ///< tensor operands consumed
    std::vector<std::string> writes; ///< tensor operands produced
};

/** A contiguous instruction range backing one LayerCost (or none). */
struct Span
{
    std::string name;
    nn::LayerKind kind = nn::LayerKind::Conv;
    int first = 0; ///< index of the span's first instruction
    int count = 0; ///< instructions in the span
    /** Carries latency but produces no LayerCost row (fill/drain). */
    bool synthetic = false;
    /**
     * Produces a LayerCost row but is excluded from the run makespan
     * and from the event backend's exit sync (work the pipeline
     * abstraction hides; see file comment).
     */
    bool offCritical = false;
};

/** A lowered network: the single source of truth both backends run. */
struct Program
{
    std::string network;
    std::string engine; ///< "inca" or "ws"
    arch::Phase phase = arch::Phase::Inference;
    int batchSize = 1;
    std::uint64_t configKeyHash = 0; ///< producing config (provenance)
    Watts idlePower = 0.0;           ///< for static energy
    bool overlap = false; ///< lowered with inter-layer overlap deps

    std::vector<Instr> instrs; ///< ends with the "exit" sync
    std::vector<Span> spans;   ///< cover instrs[0 .. N-2] in order
    std::vector<std::string> inputs; ///< tensors live before instr 0
};

/** Intra-span critical path (longest dependency chain), exact. */
Seconds spanLatency(const Program &p, const Span &span);

/**
 * Fold a span back into the analytic LayerCost: stats merged in
 * instruction order, latency = spanLatency. Bit-exact with the
 * pre-IR engine arithmetic by construction.
 */
arch::LayerCost collapseSpan(const Program &p, const Span &span);

/**
 * Program-order walk reproducing the analytic engines' accumulation:
 * non-synthetic spans contribute a LayerCost, non-off-critical spans
 * add their latency, synthetic spans add latency only, and static
 * energy is idlePower x total latency. This is the analytic backend.
 */
arch::RunCost analyticWalk(const Program &p);

/**
 * Panic (simulator bug) unless the program is well-formed: spans
 * partition the instructions, every dependency points strictly
 * backwards into the program (a DAG by construction), durations are
 * finite and non-negative, the final instruction is the single exit
 * sync, and every operand read was either written by an earlier
 * instruction in program order or is a declared program input.
 */
void validate(const Program &p);

/**
 * Deterministic text form: header, one line per instruction with
 * opcode, unit, %.17g duration, dependencies, operands, and span
 * markers. Byte-equality of two disassemblies is used both by the
 * golden snapshots and by the determinism property test.
 */
std::string disassemble(const Program &p);

} // namespace ir
} // namespace inca

#endif // INCA_IR_IR_HH
