/**
 * @file
 * IS (INCA) lowering. The per-layer arithmetic here is the former
 * core::IncaEngine math, moved verbatim: every stat lands on exactly
 * one instruction (per-key addition order preserved), and per-layer
 * latency is recovered as the span's internal critical path --
 * max(compute chain, DRAM stream) folds to the identical IEEE
 * operations the engine used, so analyticWalk() is bit-exact.
 */

#include "ir/lower.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/power.hh"
#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "dataflow/access_model.hh"
#include "inca/mapping.hh"
#include "ir/lower_internal.hh"

namespace inca {
namespace ir {

using core::IsMapping;
using nn::LayerDesc;
using nn::LayerKind;

Seconds
incaReadCycleTime(const arch::IncaConfig &cfg, int batchSize)
{
    // One windowed read: the read pulse plus the exposed half of the
    // previous result's write-back (Section V-B-2: the pipeline hides
    // part of the 50 ns write behind the next read), overlapped with
    // the shared ADC draining one conversion per active plane in its
    // group from the per-plane sample-and-holds.
    const int activePlanes = std::min(batchSize, cfg.stackedPlanes);
    const int adcsPerStack =
        std::max(1, cfg.stackedPlanes / cfg.subarraysPerAdc);
    const double conversionsSerial =
        std::ceil(double(activePlanes) / double(adcsPerStack));
    const Seconds adcDrain =
        conversionsSerial * cfg.adc().conversionLatency();
    return std::max(cfg.device.tRead + 0.5 * cfg.device.tWrite,
                    adcDrain);
}

bool
incaWeightsStreamed(const arch::IncaConfig &cfg,
                    const nn::NetworkDesc &net)
{
    const double weightBytes =
        double(net.totalWeights()) * cfg.weightBits / 8.0;
    const double onChip =
        double(cfg.org.numTiles) * cfg.buffer.capacity;
    return weightBytes > onChip;
}

namespace {

/** Per-layer group evaluations, shared process-wide (was the
 *  engines' LayerCost cache; same name, same keys). */
EvalCache<LayerGroup> &
isLayerCache()
{
    static EvalCache<LayerGroup> *c =
        new EvalCache<LayerGroup>("inca.layer");
    return *c;
}

/** Wall clock of one cached layer-group lookup (hit or miss). */
metrics::Histogram &
layerEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.layer_eval_us");
    return *h;
}

/** Buffer words to move @p values of @p bits over the tile bus. */
double
words(double values, int bits, const memory::Bus &bus)
{
    return std::ceil(values * bits / double(bus.widthBits));
}

// Instruction roles inside an IS conv-like forward/backward group.
enum
{
    kLoad = 0,
    kMvm = 1,
    kReduce = 2,
    kMove = 3,
    kSync = 4,
    kConvCount = 5,
};

// Roles inside an IS update group (no weight load; the gradient
// write-back Move runs concurrently with the Mvm read-out).
enum
{
    kUpdMvm = 0,
    kUpdReduce = 1,
    kUpdMove = 2,
    kUpdSync = 3,
    kUpdCount = 4,
};

LayerGroup
computeForwardGroup(const arch::IncaConfig &cfg, const LayerDesc &layer,
                    int batchSize, bool firstConv, bool streamed)
{
    LayerGroup g;
    g.instrs.resize(kConvCount);
    Instr &load = g.instrs[kLoad];
    Instr &mvm = g.instrs[kMvm];
    Instr &reduce = g.instrs[kReduce];
    Instr &move = g.instrs[kMove];
    Instr &sync = g.instrs[kSync];
    load.op = Op::Load;
    load.unit = streamed ? Unit::Dram : Unit::Buffer;
    mvm.op = Op::Mvm;
    mvm.unit = Unit::Array;
    reduce.op = Op::Reduce;
    reduce.unit = Unit::Adc;
    move.op = Op::Move;
    move.unit = Unit::Array;
    sync.op = Op::Sync;
    sync.unit = Unit::Ctrl;

    const IsMapping m = core::mapLayer(layer, cfg);
    const double images = batchSize;
    const double wBits = cfg.weightBits;
    const double aBits = cfg.activationBits;
    const double macs = double(layer.macs());
    const double outputs = double(layer.outputCount());
    const double batchWaves =
        std::ceil(double(batchSize) / double(cfg.stackedPlanes));

    // --- Array reads: every MAC touches one cell per (weight-bit
    // cycle, activation bit plane); 2T1R gating keeps all other cells
    // dark (unlike the baseline's fully-driven crossbars).
    const double cellReads = macs * wBits * aBits * images;
    mvm.stats.add("count.array.read", cellReads);
    mvm.stats.add("energy.array.read",
                  cellReads * cfg.device.avgReadEnergy());

    // --- Array writes: outputs propagate directly into the next
    // layer's arrays (no buffer round trip). The first conv layer also
    // pays for loading the batch's input images.
    double cellWrites = outputs * aBits * images;
    if (firstConv)
        cellWrites += double(layer.inputCount()) * aBits * images;
    move.stats.add("count.array.write", cellWrites);
    move.stats.add("energy.array.write",
                   cellWrites * cfg.device.avgWriteEnergy());

    // --- ADC: one conversion per (output, weight bit, activation bit
    // plane, channel ADC group) per image-plane.
    const double conversions = outputs * wBits * aBits *
                               double(m.adcGroupsPerOutput) * images;
    reduce.stats.add("count.adc", conversions);
    reduce.stats.add("energy.adc",
                     conversions * cfg.adc().energyPerConversion);

    // --- DAC / pillar drivers: pillars are shared by all planes of a
    // stack, so driver energy is paid once per batch wave, not per
    // image.
    const double dacEvents = macs * wBits * aBits * batchWaves;
    mvm.stats.add("energy.dac",
                  dacEvents * circuit::makeDac().energyPerActivation);

    // --- Digital: shift-accumulators after each conversion, adder
    // tree across channel groups, output registers.
    reduce.stats.add("energy.digital.shift",
                     conversions * cfg.digital.shiftAccumulate);
    reduce.stats.add(
        "energy.digital.adders",
        outputs * wBits * aBits * images *
            circuit::adderTreeEnergy(cfg.digital,
                                     double(m.adcGroupsPerOutput)));
    reduce.stats.add("energy.digital.register",
                     outputs * images * 2.0 *
                         cfg.digital.registerAccess);

    // --- Buffers: weight fetches only (Eq. 5 x kernels); the fetched
    // kernel is reused for every window and every plane. When the
    // model streams from DRAM the buffer is also written once.
    const dataflow::AccessConfig acc{int(wBits),
                                     cfg.buffer.port.widthBits};
    const double weightFetchWords =
        double(dataflow::isLayerAccesses(layer, acc)) * batchWaves;
    load.stats.add("count.buffer.read", weightFetchWords);
    load.stats.add("energy.buffer.read",
                   cfg.buffer.readEnergy(weightFetchWords));

    const double weightWords =
        words(double(layer.weightCount()), int(wBits),
              cfg.buffer.port);
    double dramBytes = 0.0;
    if (streamed) {
        load.stats.add("count.buffer.write", weightWords * batchWaves);
        load.stats.add("energy.buffer.write",
                       cfg.buffer.writeEnergy(weightWords *
                                              batchWaves));
        dramBytes =
            double(layer.weightCount()) * wBits / 8.0 * batchWaves;
        load.stats.add("count.dram.bytes", dramBytes);
        load.stats.add("energy.dram.read",
                       cfg.dram.accessEnergy(dramBytes));
    }

    // --- Latency: sequential windowed reads (output channels are
    // serial in IS; partitions, channels and planes are parallel),
    // overlapped with the weight stream from DRAM. When the layer's
    // mapping leaves macros spare -- common in the small late layers
    // -- the inputs are replicated across them so several output
    // channels compute concurrently; the extra input copies are paid
    // for as additional array writes.
    const double available = double(cfg.org.totalMacros());
    double replication =
        std::floor(available / double(m.macrosNeeded));
    replication = std::clamp(replication, 1.0,
                             double(m.serialChannels));
    if (replication > 1.0) {
        const double extraWrites = double(layer.inputCount()) * aBits *
                                   images * (replication - 1.0);
        move.stats.add("count.array.write", extraWrites);
        move.stats.add("energy.array.write",
                       extraWrites * cfg.device.avgWriteEnergy());
    }
    const double reads =
        double(m.positionsPerPartition) * wBits *
        std::ceil(double(m.serialChannels) / replication);

    // The Mvm chain (read-out) runs concurrently with the weight
    // stream: span latency = max(compute, dramTime), exactly the
    // engine's formula, because the Mvm carries no Load dependency.
    load.duration = cfg.dram.streamTime(dramBytes);
    mvm.duration = reads * incaReadCycleTime(cfg, batchSize) *
                   batchWaves;
    reduce.deps = {kMvm};
    move.deps = {kReduce};
    sync.deps = {kLoad, kMvm, kReduce, kMove};
    return g;
}

LayerGroup forwardGroup(const arch::IncaConfig &cfg,
                        const CacheKey &cfgKey, const LayerDesc &layer,
                        int batchSize, bool firstConv, bool streamed);

LayerGroup
computeBackwardGroup(const arch::IncaConfig &cfg, const CacheKey &cfgKey,
                     const LayerDesc &layer, int batchSize,
                     bool streamed)
{
    // Error backpropagation: delta_{l+1} convolved with the transposed
    // kernels. The array work mirrors the forward pass with input and
    // output roles swapped; the transposed weights are a second fetch
    // from the same buffer bytes (Table IV's "different element
    // disposition" observation), and the produced errors overwrite the
    // dead activations of this layer in place.
    LayerGroup g =
        forwardGroup(cfg, cfgKey, layer, batchSize, false, streamed);

    // Replace the forward output-write term: backward writes errors of
    // the *input* size (they overwrite this layer's activations).
    const double images = batchSize;
    const double aBits = cfg.activationBits;
    const double fwdWrites =
        double(layer.outputCount()) * aBits * images;
    const double bwdWrites =
        double(layer.inputCount()) * aBits * images;
    Instr &move = g.instrs[kMove];
    move.stats.add("count.array.write", bwdWrites - fwdWrites);
    move.stats.add("energy.array.write",
                   (bwdWrites - fwdWrites) *
                       cfg.device.avgWriteEnergy());
    return g;
}

LayerGroup
computeUpdateGroup(const arch::IncaConfig &cfg, const LayerDesc &layer,
                   int batchSize, bool streamed)
{
    // Weight update: x_l convolved with delta_l. The number of
    // products equals the layer MACs per image; gradient partial sums
    // stream out through the shift-accumulators into the buffers and
    // the updated weights are written back (DRAM when streamed).
    LayerGroup g;
    g.instrs.resize(kUpdCount);
    Instr &mvm = g.instrs[kUpdMvm];
    Instr &reduce = g.instrs[kUpdReduce];
    Instr &move = g.instrs[kUpdMove];
    Instr &sync = g.instrs[kUpdSync];
    mvm.op = Op::Mvm;
    mvm.unit = Unit::Array;
    reduce.op = Op::Reduce;
    reduce.unit = Unit::Adc;
    move.op = Op::Move;
    move.unit = streamed ? Unit::Dram : Unit::Buffer;
    sync.op = Op::Sync;
    sync.unit = Unit::Ctrl;

    const IsMapping m = core::mapLayer(layer, cfg);
    const double images = batchSize;
    const double wBits = cfg.weightBits;
    const double aBits = cfg.activationBits;
    const double macs = double(layer.macs());
    const double weights = double(layer.weightCount());
    const double batchWaves =
        std::ceil(double(batchSize) / double(cfg.stackedPlanes));

    const double cellReads = macs * wBits * aBits * images;
    mvm.stats.add("count.array.read", cellReads);
    mvm.stats.add("energy.array.read",
                  cellReads * cfg.device.avgReadEnergy());

    // One conversion per (gradient element, bit pair, ADC group); the
    // batch dimension is reduced by the plane-level analog
    // accumulation feeding one shared ADC group per stack.
    const double conversions = weights * wBits * aBits *
                               double(m.adcGroupsPerOutput) *
                               batchWaves;
    reduce.stats.add("count.adc", conversions);
    reduce.stats.add("energy.adc",
                     conversions * cfg.adc().energyPerConversion);
    reduce.stats.add("energy.digital.shift",
                     conversions * cfg.digital.shiftAccumulate);
    // Gradient subtraction (Eq. 4) in the digital domain.
    reduce.stats.add("energy.digital.adders",
                     weights * cfg.digital.adder16bit);

    // Updated weights written back through buffers (and DRAM).
    const double weightWords =
        words(weights, int(wBits), cfg.buffer.port);
    move.stats.add("count.buffer.write", weightWords);
    move.stats.add("energy.buffer.write",
                   cfg.buffer.writeEnergy(weightWords));
    move.stats.add("count.buffer.read", weightWords);
    move.stats.add("energy.buffer.read",
                   cfg.buffer.readEnergy(weightWords));
    double dramBytes = 0.0;
    if (streamed) {
        dramBytes = weights * wBits / 8.0;
        move.stats.add("count.dram.bytes", dramBytes);
        move.stats.add("energy.dram.write",
                       cfg.dram.accessEnergy(dramBytes));
    }

    // Update runs in parallel with the preceding layer's error
    // computation (Section IV-C), so its latency mostly hides; the
    // exposed part is the gradient read-out, concurrent with the
    // write-back stream (the Move carries no Mvm dependency, so span
    // latency = max of the two paths -- the engine's formula).
    const double reads = double(m.positionsPerPartition) * wBits *
                         double(m.serialChannels);
    mvm.duration = 0.25 * reads * incaReadCycleTime(cfg, batchSize) *
                   batchWaves;
    move.duration = cfg.dram.streamTime(dramBytes);
    reduce.deps = {kUpdMvm};
    sync.deps = {kUpdMvm, kUpdReduce, kUpdMove};
    return g;
}

LayerGroup
computeAuxGroup(const arch::IncaConfig &cfg, const LayerDesc &layer,
                int batchSize, bool backward)
{
    LayerGroup g;
    g.instrs.resize(2);
    Instr &act = g.instrs[0];
    Instr &sync = g.instrs[1];
    act.op = Op::Activation;
    act.unit = Unit::Digital;
    sync.op = Op::Sync;
    sync.unit = Unit::Ctrl;
    sync.deps = {0};

    const double images = batchSize;
    const double outputs = double(layer.outputCount());
    switch (layer.kind) {
      case LayerKind::ReLU:
        if (backward) {
            // AND gate against the stored sign replaces the gradient
            // multiplication (Section IV-C).
            act.stats.add("energy.digital.post",
                          outputs * images * cfg.digital.andGate);
        } else {
            act.stats.add("energy.digital.post",
                          outputs * images * cfg.digital.reluOp);
        }
        break;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool: {
        const double window = double(layer.kh) * layer.kw;
        if (backward) {
            // LUT restores the argmax position; other nodes are dead.
            act.stats.add("energy.digital.post",
                          outputs * images * cfg.digital.lutLookup);
        } else {
            act.stats.add("energy.digital.post",
                          outputs * images * window *
                              cfg.digital.maxPoolCompare);
            // Training must remember argmax positions in the LUT.
            act.stats.add("energy.digital.post",
                          outputs * images * cfg.digital.lutLookup);
        }
        break;
      }
      case LayerKind::Add:
        act.stats.add("energy.digital.post",
                      outputs * images * cfg.digital.adder8bit);
        break;
      default:
        break;
    }
    // Post-processing is streaming and hides behind array work.
    return g;
}

// ---- Cached wrappers: same trace spans, timers, cache keys, and
// nesting (backward's miss path calls the cached forward wrapper) as
// the engine's per-layer entry points, so the hit/miss stream the
// cache tests pin is unchanged.

LayerGroup
forwardGroup(const arch::IncaConfig &cfg, const CacheKey &cfgKey,
             const LayerDesc &layer, int batchSize, bool firstConv,
             bool streamed)
{
    trace::Span span(trace::spanName("inca.fwd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey;
    key.add("F");
    nn::appendKey(key, layer);
    key.add(batchSize).add(firstConv).add(streamed);
    return isLayerCache().getOrCompute(key, [&] {
        return computeForwardGroup(cfg, layer, batchSize, firstConv,
                                   streamed);
    });
}

LayerGroup
backwardGroup(const arch::IncaConfig &cfg, const CacheKey &cfgKey,
              const LayerDesc &layer, int batchSize, bool streamed)
{
    trace::Span span(trace::spanName("inca.bwd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey;
    key.add("B");
    nn::appendKey(key, layer);
    key.add(batchSize).add(streamed);
    return isLayerCache().getOrCompute(key, [&] {
        return computeBackwardGroup(cfg, cfgKey, layer, batchSize,
                                    streamed);
    });
}

LayerGroup
updateGroup(const arch::IncaConfig &cfg, const CacheKey &cfgKey,
            const LayerDesc &layer, int batchSize, bool streamed)
{
    trace::Span span(trace::spanName("inca.upd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey;
    key.add("U");
    nn::appendKey(key, layer);
    key.add(batchSize).add(streamed);
    return isLayerCache().getOrCompute(key, [&] {
        return computeUpdateGroup(cfg, layer, batchSize, streamed);
    });
}

LayerGroup
auxGroup(const arch::IncaConfig &cfg, const CacheKey &cfgKey,
         const LayerDesc &layer, int batchSize, bool backward)
{
    trace::Span span(trace::spanName("inca.aux ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey;
    key.add("A");
    nn::appendKey(key, layer);
    key.add(batchSize).add(backward);
    return isLayerCache().getOrCompute(key, [&] {
        return computeAuxGroup(cfg, layer, batchSize, backward);
    });
}

/** Assembly state threaded through the IS program builder. */
struct IsBuilder
{
    explicit IsBuilder(Program &prog) : p(prog) {}

    Program &p;
    bool overlapInf = false; ///< IS-inference overlap wiring active

    int prevEnd = -1;  ///< completion instr of the previous span
    int prevLoad = -1; ///< most recent Load (prefetch ordering)
    int prevData = -1; ///< data-producing instr of the previous span
    std::vector<int> convEnds; ///< conv-span completions (prefetch cap)
    std::string prevAct = "act.in";
    std::string prevGrad = "grad.out";

    void
    convForward(const LayerDesc &layer, LayerGroup g)
    {
        const int base = appendSpan(p, std::move(g), layer.name,
                                    layer.kind, false, false);
        Instr &load = p.instrs[std::size_t(base + kLoad)];
        Instr &mvm = p.instrs[std::size_t(base + kMvm)];
        Instr &reduce = p.instrs[std::size_t(base + kReduce)];
        Instr &move = p.instrs[std::size_t(base + kMove)];
        Instr &sync = p.instrs[std::size_t(base + kSync)];
        load.label = "load " + layer.name;
        load.writes = {"w.fetch." + layer.name};
        mvm.label = "mvm " + layer.name;
        mvm.reads = {prevAct, "w.fetch." + layer.name};
        mvm.writes = {"psum." + layer.name};
        reduce.label = "reduce " + layer.name;
        reduce.reads = {"psum." + layer.name};
        reduce.writes = {"out." + layer.name};
        move.label = "move " + layer.name;
        move.reads = {"out." + layer.name};
        move.writes = {"act." + layer.name};
        sync.label = "sync " + layer.name;
        if (overlapInf) {
            // Double buffering: the next layer's weights may stream as
            // soon as the DRAM/buffer port is free, bounded two layers
            // ahead; compute waits only for the previous layer's data.
            // Every relaxed dependency finishes no later than the
            // serial span boundary it replaces, so the event makespan
            // can only shrink.
            if (prevLoad >= 0)
                load.deps.push_back(prevLoad);
            if (convEnds.size() >= 2)
                load.deps.push_back(convEnds[convEnds.size() - 2]);
            if (prevData >= 0)
                mvm.deps.push_back(prevData);
            if (prevEnd >= 0)
                sync.deps.push_back(prevEnd);
        } else {
            chainAfter(p, base, prevEnd);
        }
        prevEnd = base + kSync;
        prevLoad = base + kLoad;
        prevData = base + kMove;
        convEnds.push_back(prevEnd);
        prevAct = "act." + layer.name;
    }

    void
    aux(const LayerDesc &layer, LayerGroup g, bool backward)
    {
        const std::string name =
            backward ? layer.name + ".bwd" : layer.name;
        const int base =
            appendSpan(p, std::move(g), name, layer.kind, false, false);
        Instr &act = p.instrs[std::size_t(base)];
        Instr &sync = p.instrs[std::size_t(base + 1)];
        act.label = "post " + name;
        std::string &chain = backward ? prevGrad : prevAct;
        const std::string out =
            (backward ? "grad." : "act.") + name;
        act.reads = {chain};
        act.writes = {out};
        sync.label = "sync " + name;
        if (overlapInf) {
            if (prevData >= 0)
                act.deps.push_back(prevData);
            if (prevEnd >= 0)
                sync.deps.push_back(prevEnd);
        } else {
            chainAfter(p, base, prevEnd);
        }
        prevEnd = base + 1;
        prevData = base;
        chain = out;
    }

    void
    convBackward(const LayerDesc &layer, LayerGroup g)
    {
        const std::string name = layer.name + ".bwd";
        const int base =
            appendSpan(p, std::move(g), name, layer.kind, false, false);
        Instr &load = p.instrs[std::size_t(base + kLoad)];
        Instr &mvm = p.instrs[std::size_t(base + kMvm)];
        Instr &reduce = p.instrs[std::size_t(base + kReduce)];
        Instr &move = p.instrs[std::size_t(base + kMove)];
        Instr &sync = p.instrs[std::size_t(base + kSync)];
        load.label = "load-T " + layer.name;
        load.writes = {"wT.fetch." + layer.name};
        mvm.label = "mvm " + name;
        mvm.reads = {prevGrad, "wT.fetch." + layer.name};
        mvm.writes = {"psum." + name};
        reduce.label = "reduce " + name;
        reduce.reads = {"psum." + name};
        reduce.writes = {"err." + layer.name};
        move.label = "move " + name;
        move.reads = {"err." + layer.name};
        move.writes = {"grad." + layer.name};
        sync.label = "sync " + name;
        chainAfter(p, base, prevEnd);
        prevEnd = base + kSync;
        prevData = base + kMove;
        prevGrad = "grad." + layer.name;
    }

    void
    convUpdate(const LayerDesc &layer, const std::string &inputAct,
               LayerGroup g)
    {
        const std::string name = layer.name + ".upd";
        const int base =
            appendSpan(p, std::move(g), name, layer.kind, false, false);
        Instr &mvm = p.instrs[std::size_t(base + kUpdMvm)];
        Instr &reduce = p.instrs[std::size_t(base + kUpdReduce)];
        Instr &move = p.instrs[std::size_t(base + kUpdMove)];
        Instr &sync = p.instrs[std::size_t(base + kUpdSync)];
        mvm.label = "mvm " + name;
        mvm.reads = {inputAct, "grad." + layer.name};
        mvm.writes = {"psum." + name};
        reduce.label = "reduce " + name;
        reduce.reads = {"psum." + name};
        reduce.writes = {"dw." + layer.name};
        move.label = "writeback " + layer.name;
        move.reads = {"dw." + layer.name};
        move.writes = {"w." + layer.name};
        sync.label = "sync " + name;
        chainAfter(p, base, prevEnd);
        prevEnd = base + kUpdSync;
    }
};

} // namespace

Program
lowerInca(const arch::IncaConfig &cfg, const nn::NetworkDesc &net,
          arch::Phase phase, int batchSize, const LowerOptions &opts)
{
    inca_assert(batchSize > 0, "batch size must be positive");
    CacheKey cfgKey;
    arch::appendKey(cfgKey, cfg);

    Program p;
    p.network = net.name;
    p.engine = "inca";
    p.phase = phase;
    p.batchSize = batchSize;
    p.configKeyHash = cfgKey.hash();
    p.idlePower = arch::incaIdlePower(cfg);
    p.overlap = opts.overlap;
    p.inputs = {"act.in"};
    if (phase == arch::Phase::Training)
        p.inputs.push_back("grad.out");

    const bool streamed = incaWeightsStreamed(cfg, net);
    IsBuilder b{p};
    // Overlap only relaxes IS inference: training's backward chain is
    // data-serial, and the update/backward concurrency is already
    // folded into the update group's durations.
    b.overlapInf =
        opts.overlap && phase == arch::Phase::Inference;

    // Feedforward.
    bool first = true;
    // Input-activation operand of each layer, for update groups.
    std::vector<std::string> layerInput(net.layers.size());
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        const LayerDesc &layer = net.layers[i];
        layerInput[i] = b.prevAct;
        if (layer.isConvLike()) {
            b.convForward(layer, forwardGroup(cfg, cfgKey, layer,
                                              batchSize, first,
                                              streamed));
            first = false;
        } else {
            b.aux(layer,
                  auxGroup(cfg, cfgKey, layer, batchSize, false),
                  false);
        }
    }

    // Backpropagation + weight update, last layer to first.
    if (phase == arch::Phase::Training) {
        for (std::size_t r = net.layers.size(); r-- > 0;) {
            const LayerDesc &layer = net.layers[r];
            if (layer.isConvLike()) {
                b.convBackward(layer, backwardGroup(cfg, cfgKey, layer,
                                                    batchSize,
                                                    streamed));
                b.convUpdate(layer, layerInput[r],
                             updateGroup(cfg, cfgKey, layer, batchSize,
                                         streamed));
            } else {
                b.aux(layer,
                      auxGroup(cfg, cfgKey, layer, batchSize, true),
                      true);
            }
        }
    }

    sealProgram(p, b.prevEnd);
    validate(p);
    return p;
}

} // namespace ir
} // namespace inca
