/**
 * @file
 * Shared internals of the IS and WS lowering passes: the cacheable
 * per-layer instruction group and the assembly helpers that splice
 * groups into a Program.
 */

#ifndef INCA_IR_LOWER_INTERNAL_HH
#define INCA_IR_LOWER_INTERNAL_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "ir/ir.hh"

namespace inca {
namespace ir {

/**
 * A position-independent per-layer instruction group: dependencies are
 * group-local indices, labels and operands are unset (they carry the
 * layer name, which the cache keys deliberately exclude). This is the
 * value type memoized in the "inca.layer" / "ws.layer" EvalCaches;
 * appendSpan() rebases a copy into a concrete Program and the caller
 * then assigns labels, operands, and inter-span wiring.
 */
struct LayerGroup
{
    std::vector<Instr> instrs;
};

/**
 * Append @p g to @p p as a new span. Group-local dependencies are
 * rebased to global indices. Returns the global index of the group's
 * first instruction; the span's last instruction (base + count - 1)
 * is its completion point for inter-span wiring.
 */
inline int
appendSpan(Program &p, LayerGroup g, const std::string &name,
           nn::LayerKind kind, bool synthetic, bool offCritical)
{
    const int base = int(p.instrs.size());
    Span s;
    s.name = name;
    s.kind = kind;
    s.first = base;
    s.count = int(g.instrs.size());
    s.synthetic = synthetic;
    s.offCritical = offCritical;
    p.spans.push_back(std::move(s));
    for (Instr &in : g.instrs) {
        in.span = int(p.spans.size()) - 1;
        for (int &d : in.deps)
            d += base;
        p.instrs.push_back(std::move(in));
    }
    return base;
}

/**
 * Serial wiring: every dependency-free instruction of the span that
 * starts at @p base (and runs to the end of the program) waits on
 * @p prevEnd. Instructions with intra-group dependencies inherit the
 * ordering transitively.
 */
inline void
chainAfter(Program &p, int base, int prevEnd)
{
    if (prevEnd < 0)
        return;
    for (int i = base; i < int(p.instrs.size()); ++i)
        if (p.instrs[std::size_t(i)].deps.empty())
            p.instrs[std::size_t(i)].deps.push_back(prevEnd);
}

/** Append the single exit sync; @p lastCritical is its dependency. */
inline void
sealProgram(Program &p, int lastCritical)
{
    Instr exit;
    exit.op = Op::Sync;
    exit.unit = Unit::Ctrl;
    exit.label = "exit";
    exit.span = -1;
    if (lastCritical >= 0)
        exit.deps.push_back(lastCritical);
    p.instrs.push_back(std::move(exit));
}

} // namespace ir
} // namespace inca

#endif // INCA_IR_LOWER_INTERNAL_HH
