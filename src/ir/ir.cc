#include "ir/ir.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace inca {
namespace ir {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Load:
        return "load";
      case Op::Mvm:
        return "mvm";
      case Op::Move:
        return "move";
      case Op::Activation:
        return "activation";
      case Op::Reduce:
        return "reduce";
      case Op::Sync:
        return "sync";
    }
    panic("unreachable op %d", int(op));
}

const char *
unitName(Unit unit)
{
    switch (unit) {
      case Unit::Dram:
        return "dram";
      case Unit::Buffer:
        return "buffer";
      case Unit::Array:
        return "array";
      case Unit::Adc:
        return "adc";
      case Unit::Digital:
        return "digital";
      case Unit::Pipeline:
        return "pipeline";
      case Unit::Ctrl:
        return "ctrl";
    }
    panic("unreachable unit %d", int(unit));
}

bool
unitByName(const std::string &name, Unit &out)
{
    for (int u = 0; u <= int(Unit::Ctrl); ++u) {
        if (name == unitName(Unit(u))) {
            out = Unit(u);
            return true;
        }
    }
    return false;
}

Seconds
spanLatency(const Program &p, const Span &span)
{
    // Longest dependency chain inside the span; dependencies that
    // reach outside the span (inter-span wiring) are scheduling
    // context, not part of the layer's own busy time. finish = (max
    // of dep finishes) + duration keeps every addition a single IEEE
    // operation, so the chain folds exactly like the engine formulas
    // it replaces (max(a + c, b + c) == max(a, b) + c).
    std::vector<Seconds> finish(std::size_t(span.count), 0.0);
    Seconds latest = 0.0;
    for (int i = 0; i < span.count; ++i) {
        const Instr &in = p.instrs[std::size_t(span.first + i)];
        Seconds start = 0.0;
        for (const int d : in.deps) {
            if (d < span.first || d >= span.first + span.count)
                continue;
            start = std::max(start,
                             finish[std::size_t(d - span.first)]);
        }
        finish[std::size_t(i)] = start + in.duration;
        latest = std::max(latest, finish[std::size_t(i)]);
    }
    return latest;
}

arch::LayerCost
collapseSpan(const Program &p, const Span &span)
{
    arch::LayerCost cost;
    cost.name = span.name;
    cost.kind = span.kind;
    for (int i = 0; i < span.count; ++i)
        cost.stats += p.instrs[std::size_t(span.first + i)].stats;
    cost.latency = spanLatency(p, span);
    return cost;
}

arch::RunCost
analyticWalk(const Program &p)
{
    arch::RunCost run;
    run.network = p.network;
    run.phase = p.phase;
    run.batchSize = p.batchSize;
    run.configKeyHash = p.configKeyHash;
    for (const Span &span : p.spans) {
        if (span.synthetic) {
            run.latency += spanLatency(p, span);
            continue;
        }
        run.layers.push_back(collapseSpan(p, span));
        if (!span.offCritical)
            run.latency += run.layers.back().latency;
    }
    run.staticEnergy = p.idlePower * run.latency;
    return run;
}

void
validate(const Program &p)
{
    const int n = int(p.instrs.size());
    inca_assert(n >= 1, "program '%s' is empty", p.network.c_str());
    const Instr &exit = p.instrs.back();
    inca_assert(exit.op == Op::Sync && exit.label == "exit",
                "program '%s' must end with the exit sync",
                p.network.c_str());

    // Spans partition [0, n-1) in order; the exit sync stands alone.
    int next = 0;
    for (const Span &span : p.spans) {
        inca_assert(span.first == next && span.count > 0,
                    "span '%s' breaks the partition at %d",
                    span.name.c_str(), next);
        next = span.first + span.count;
    }
    inca_assert(next == n - 1,
                "spans cover %d of %d instructions", next, n - 1);

    std::set<std::string> live(p.inputs.begin(), p.inputs.end());
    for (int i = 0; i < n; ++i) {
        const Instr &in = p.instrs[std::size_t(i)];
        inca_assert(std::isfinite(in.duration) && in.duration >= 0.0,
                    "instr %d '%s' has bad duration", i,
                    in.label.c_str());
        std::set<int> seen;
        for (const int d : in.deps) {
            inca_assert(d >= 0 && d < i,
                        "instr %d '%s' depends forward on %d "
                        "(cycle/deadlock)",
                        i, in.label.c_str(), d);
            inca_assert(seen.insert(d).second,
                        "instr %d '%s' lists dep %d twice", i,
                        in.label.c_str(), d);
        }
        // Tensors must be produced before use, in program order
        // (loads stream concurrently with the consumer, so program
        // order, not dependency order, is the visibility rule).
        for (const std::string &r : in.reads)
            inca_assert(live.count(r) != 0,
                        "instr %d '%s' reads '%s' before any write",
                        i, in.label.c_str(), r.c_str());
        for (const std::string &w : in.writes)
            live.insert(w);
    }
}

std::string
disassemble(const Program &p)
{
    std::ostringstream os;
    char buf[64];
    const auto num = [&](double v) {
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return std::string(buf);
    };
    os << "program " << p.engine << "." << p.network << "."
       << (p.phase == arch::Phase::Training ? "training"
                                            : "inference")
       << " batch=" << p.batchSize
       << " overlap=" << (p.overlap ? 1 : 0) << "\n";
    os << "inputs:";
    for (const std::string &in : p.inputs)
        os << " " << in;
    os << "\n";
    std::size_t span = 0;
    for (int i = 0; i < int(p.instrs.size()); ++i) {
        while (span < p.spans.size() &&
               p.spans[span].first == i) {
            const Span &s = p.spans[span];
            os << "span " << s.name << " kind="
               << int(s.kind)
               << (s.synthetic ? " synthetic" : "")
               << (s.offCritical ? " off-critical" : "") << "\n";
            ++span;
        }
        const Instr &in = p.instrs[std::size_t(i)];
        os << "  [" << i << "] " << opName(in.op) << " "
           << unitName(in.unit) << " dur=" << num(in.duration)
           << " deps=(";
        for (std::size_t d = 0; d < in.deps.size(); ++d)
            os << (d ? "," : "") << in.deps[d];
        os << ")";
        if (!in.reads.empty()) {
            os << " reads=(";
            for (std::size_t r = 0; r < in.reads.size(); ++r)
                os << (r ? "," : "") << in.reads[r];
            os << ")";
        }
        if (!in.writes.empty()) {
            os << " writes=(";
            for (std::size_t w = 0; w < in.writes.size(); ++w)
                os << (w ? "," : "") << in.writes[w];
            os << ")";
        }
        if (!in.label.empty())
            os << " ; " << in.label;
        os << "\n";
    }
    return os.str();
}

} // namespace ir
} // namespace inca
