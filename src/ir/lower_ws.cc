/**
 * @file
 * WS (baseline) lowering. The per-layer arithmetic is the former
 * baseline::BaselineEngine math, moved verbatim. The pipeline model
 * maps onto the IR as follows:
 *
 *  - inference: layer spans chain serially and fold to the analytic
 *    fill time; a synthetic drain span carries the steady-state term
 *    (batch - 1) x slowest (with the ISAAC 1.5x balancing clamp
 *    computed here, in the identical floating-point loop);
 *  - training: the per-layer fwd/bwd/upd spans are off-critical (the
 *    pipeline hides them; the analytic engine reports their costs per
 *    layer but never adds their latency) -- the critical chain is a
 *    synthetic "pipe" span per conv layer carrying passes x stage,
 *    then the drain, then the weight reload. The reload's LayerCost
 *    lands last in run.layers, exactly as the engine ordered it, and
 *    the final latency differs only by a commuted IEEE addition
 *    (a + b == b + a), so the total stays bit-exact.
 */

#include "ir/lower.hh"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "arch/power.hh"
#include "baseline/mapping.hh"
#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "dataflow/access_model.hh"
#include "ir/lower_internal.hh"

namespace inca {
namespace ir {

using baseline::WsMapping;
using nn::LayerDesc;
using nn::LayerKind;

bool
wsWeightsReloaded(const arch::BaselineConfig &cfg,
                  const nn::NetworkDesc &net, bool training)
{
    // Training keeps a transposed copy next to the originals
    // (Limitation 2), doubling the cell demand.
    const double cellsNeeded = double(net.totalWeights()) *
                               cfg.weightBits *
                               (training ? 2.0 : 1.0);
    return cellsNeeded > double(cfg.totalCells());
}

double
wsBufferShare(const arch::BaselineConfig &cfg,
              const nn::NetworkDesc &net, const nn::LayerDesc &layer)
{
    // Layers share the chip's buffers in proportion to the crossbars
    // their pipeline stage occupies.
    const double totalArrays =
        double(baseline::arraysForNetwork(net, cfg));
    if (totalArrays == 0.0)
        return 0.0;
    const double layerArrays =
        double(baseline::mapLayer(layer, cfg).arrays());
    const double totalBuffer =
        double(cfg.org.numTiles) * cfg.buffer.capacity;
    return totalBuffer * layerArrays / totalArrays;
}

namespace {

/** Per-layer group evaluations, shared process-wide (was the
 *  engines' LayerCost cache; same name, same keys). */
EvalCache<LayerGroup> &
wsLayerCache()
{
    static EvalCache<LayerGroup> *c =
        new EvalCache<LayerGroup>("ws.layer");
    return *c;
}

/** Wall clock of one cached layer-group lookup (hit or miss). */
metrics::Histogram &
layerEvalHistogram()
{
    static metrics::Histogram *h =
        &metrics::histogram("engine.layer_eval_us");
    return *h;
}

// Instruction roles inside a WS conv-like stage group. Training
// appends one extra Move before the sync (RRAM stores), shifting the
// sync to index 5.
enum
{
    kLoad = 0,
    kMvm = 1,
    kReduce = 2,
    kMove = 3,
    kSync = 4,
    kStageCount = 5,
    kExtra = 4, ///< training-only extra Move
    kExtraSync = 5,
};

LayerGroup
computeForwardGroup(const arch::BaselineConfig &cfg,
                    const nn::NetworkDesc &net, const LayerDesc &layer,
                    int batchSize)
{
    LayerGroup g;
    g.instrs.resize(kStageCount);
    Instr &load = g.instrs[kLoad];
    Instr &mvm = g.instrs[kMvm];
    Instr &reduce = g.instrs[kReduce];
    Instr &move = g.instrs[kMove];
    Instr &sync = g.instrs[kSync];
    load.op = Op::Load;
    load.unit = Unit::Buffer;
    mvm.op = Op::Mvm;
    mvm.unit = Unit::Array;
    reduce.op = Op::Reduce;
    reduce.unit = Unit::Adc;
    move.op = Op::Move;
    move.unit = Unit::Buffer;
    sync.op = Op::Sync;
    sync.unit = Unit::Ctrl;

    const WsMapping m = baseline::mapLayer(layer, cfg);
    const double images = batchSize;
    const double wBits = cfg.weightBits;
    const double aBits = cfg.activationBits;
    const double s = cfg.subarraySize;

    // Window activations per image: every window position, every
    // input-bit cycle (bit-serial DAC streaming, ISAAC style).
    const double activations = double(m.windows) * aBits;

    // --- Array reads: the driven rows cross EVERY column of their
    // arrays (1T1R has no column gating), so unused columns still burn
    // read current -- the coarse-grained cost of Limitation 3. Per-
    // column sample-and-holds (as in ISAAC) keep the bias to one read
    // pulse while the shared ADC scans.
    const double activeCells = double(m.usedRows) *
                               double(m.colTiles) * s *
                               double(m.channelGroups);
    const double cellReads = activations * activeCells * images;
    mvm.stats.add("count.array.read", cellReads);
    mvm.stats.add("energy.array.read",
                  cellReads * cfg.device.avgReadEnergy());

    // --- ADC: every column of every active array converts each cycle.
    const double conversions =
        activations * double(m.arrays()) * s * images;
    reduce.stats.add("count.adc", conversions);
    reduce.stats.add("energy.adc",
                     conversions * cfg.adc().energyPerConversion);

    // --- DAC drivers on the used rows.
    mvm.stats.add("energy.dac",
                  activations * double(m.usedRows) *
                      double(m.channelGroups) * images *
                      circuit::makeDac().energyPerActivation);

    // --- Digital: shift-accumulate per conversion, adders joining
    // row tiles, output registers.
    reduce.stats.add("energy.digital.shift",
                     conversions * cfg.digital.shiftAccumulate);
    const double outputs = double(layer.outputCount());
    reduce.stats.add("energy.digital.adders",
                     outputs * aBits * images *
                         circuit::adderTreeEnergy(cfg.digital,
                                                  double(m.rowTiles)));
    reduce.stats.add("energy.digital.register",
                     outputs * images * 2.0 *
                         cfg.digital.registerAccess);

    // --- Buffers: inputs fetched per output element (Eq. 5 x OH x OW)
    // and outputs saved per position (Eq. 6) to keep the inter-layer
    // pipeline running (Limitation 1).
    const dataflow::AccessConfig acc{int(wBits),
                                     cfg.buffer.port.widthBits};
    const double fetchWords =
        double(dataflow::fetchWordsPerOutput(layer, acc)) *
        double(m.windows) * images;
    const double saveWords_ =
        double(dataflow::saveWords(layer, acc)) * images;
    load.stats.add("count.buffer.read", fetchWords);
    load.stats.add("energy.buffer.read",
                   cfg.buffer.readEnergy(fetchWords));
    move.stats.add("count.buffer.write", saveWords_);
    move.stats.add("energy.buffer.write",
                   cfg.buffer.writeEnergy(saveWords_));

    // --- DRAM: activations that exceed the stage's buffer share spill
    // off-chip (written by this layer, read back by the next).
    const double outBytes = outputs * aBits / 8.0;
    const double spill =
        std::max(0.0, outBytes - wsBufferShare(cfg, net, layer));
    double dramBytes = 2.0 * spill * images;
    move.stats.add("count.dram.bytes", dramBytes);
    move.stats.add("energy.dram.activation",
                   cfg.dram.accessEnergy(dramBytes));

    // --- Latency per image: windows stream through the crossbars one
    // per aBits cycles; all kernels' columns compute in parallel. The
    // fetch/save traffic pipelines with the reads (no exposed time).
    mvm.duration = activations * cfg.readCycle();
    reduce.deps = {kMvm};
    move.deps = {kReduce};
    sync.deps = {kLoad, kMvm, kReduce, kMove};
    return g;
}

LayerGroup
computeAuxGroup(const arch::BaselineConfig &cfg, const LayerDesc &layer,
                int batchSize)
{
    LayerGroup g;
    g.instrs.resize(2);
    Instr &act = g.instrs[0];
    Instr &sync = g.instrs[1];
    act.op = Op::Activation;
    act.unit = Unit::Digital;
    sync.op = Op::Sync;
    sync.unit = Unit::Ctrl;
    sync.deps = {0};

    const double images = batchSize;
    const double outputs = double(layer.outputCount());
    switch (layer.kind) {
      case LayerKind::ReLU:
        act.stats.add("energy.digital.post",
                      outputs * images * cfg.digital.reluOp);
        break;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool:
        act.stats.add("energy.digital.post",
                      outputs * images * double(layer.kh) * layer.kw *
                          cfg.digital.maxPoolCompare);
        break;
      case LayerKind::Add:
        act.stats.add("energy.digital.post",
                      outputs * images * cfg.digital.adder8bit);
        break;
      default:
        break;
    }
    return g;
}

// ---- Cached wrappers (same trace spans, timers, keys as the engine).

LayerGroup
forwardGroup(const arch::BaselineConfig &cfg, const CacheKey &cfgKey,
             const nn::NetworkDesc &net, const LayerDesc &layer,
             int batchSize)
{
    trace::Span span(trace::spanName("ws.fwd ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey;
    key.add("F");
    nn::appendKey(key, layer);
    // The only way the network influences a layer's cost is through
    // its buffer share; keying on that value keeps the cache shared
    // across networks that grant the same share.
    key.add(batchSize).add(wsBufferShare(cfg, net, layer));
    return wsLayerCache().getOrCompute(key, [&] {
        return computeForwardGroup(cfg, net, layer, batchSize);
    });
}

LayerGroup
auxGroup(const arch::BaselineConfig &cfg, const CacheKey &cfgKey,
         const LayerDesc &layer, int batchSize)
{
    trace::Span span(trace::spanName("ws.aux ", layer.name));
    metrics::ScopedTimer timer(layerEvalHistogram());
    CacheKey key = cfgKey;
    key.add("A");
    nn::appendKey(key, layer);
    key.add(batchSize);
    return wsLayerCache().getOrCompute(key, [&] {
        return computeAuxGroup(cfg, layer, batchSize);
    });
}

/** Copy @p g, inserting an extra Array Move (RRAM stores) before the
 *  sync; @p dep is the group-local index the store waits on. */
LayerGroup
withArrayStore(LayerGroup g, double cellWrites, Joules energy,
               Seconds duration, int dep)
{
    Instr store;
    store.op = Op::Move;
    store.unit = Unit::Array;
    store.stats.add("count.array.write", cellWrites);
    store.stats.add("energy.array.write", energy);
    store.duration = duration;
    store.deps = {dep};
    Instr sync = std::move(g.instrs.back());
    sync.deps.push_back(kExtra);
    g.instrs.back() = std::move(store);
    g.instrs.push_back(std::move(sync));
    return g;
}

/** The weight-reload group (uncached; two instructions + sync). */
LayerGroup
reloadGroup(const arch::BaselineConfig &cfg, const nn::NetworkDesc &net,
            bool training)
{
    LayerGroup g;
    g.instrs.resize(3);
    Instr &load = g.instrs[0];
    Instr &move = g.instrs[1];
    Instr &sync = g.instrs[2];
    load.op = Op::Load;
    load.unit = Unit::Dram;
    move.op = Op::Move;
    move.unit = Unit::Array;
    move.deps = {0};
    sync.op = Op::Sync;
    sync.unit = Unit::Ctrl;
    sync.deps = {0, 1};

    // Originals (+ transposed copies when training), streamed and
    // programmed; rows program in parallel across arrays, so the
    // exposed time is the DRAM stream.
    const double weightBits =
        (training ? 2.0 : 1.0) * double(net.totalWeights()) *
        cfg.weightBits;
    const double bytes = weightBits / 8.0;
    load.stats.add("count.dram.bytes", bytes);
    load.stats.add("energy.dram.weights", cfg.dram.accessEnergy(bytes));
    move.stats.add("energy.array.write",
                   weightBits * cfg.device.avgWriteEnergy());
    load.duration = cfg.dram.streamTime(bytes);
    return g;
}

/** Label + operand assignment for a conv stage span at @p base. */
void
nameStage(Program &p, int base, const std::string &name,
          const std::string &in, const std::string &weights,
          const std::string &out, int count)
{
    Instr &load = p.instrs[std::size_t(base + kLoad)];
    Instr &mvm = p.instrs[std::size_t(base + kMvm)];
    Instr &reduce = p.instrs[std::size_t(base + kReduce)];
    Instr &move = p.instrs[std::size_t(base + kMove)];
    load.label = "fetch " + name;
    load.reads = {in};
    load.writes = {"fetch." + name};
    mvm.label = "mvm " + name;
    mvm.reads = {"fetch." + name, weights};
    mvm.writes = {"psum." + name};
    reduce.label = "reduce " + name;
    reduce.reads = {"psum." + name};
    reduce.writes = {"out." + name};
    move.label = "save " + name;
    move.reads = {"out." + name};
    move.writes = {out};
    p.instrs[std::size_t(base + count - 1)].label = "sync " + name;
}

} // namespace

Program
lowerWs(const arch::BaselineConfig &cfg, const nn::NetworkDesc &net,
        arch::Phase phase, int batchSize, const LowerOptions &opts)
{
    inca_assert(batchSize > 0, "batch size must be positive");
    CacheKey cfgKey;
    arch::appendKey(cfgKey, cfg);

    const bool training = phase == arch::Phase::Training;
    Program p;
    p.network = net.name;
    p.engine = "ws";
    p.phase = phase;
    p.batchSize = batchSize;
    p.configKeyHash = cfgKey.hash();
    p.idlePower = arch::baselineIdlePower(cfg);
    // The WS pipeline already overlaps analytically (fill + drain);
    // the overlap flag does not change its program.
    p.overlap = opts.overlap;
    p.inputs = {"act.in"};
    if (training)
        p.inputs.push_back("grad.out");
    for (const auto &layer : net.layers) {
        if (!layer.isConvLike())
            continue;
        p.inputs.push_back("w." + layer.name);
        if (training)
            p.inputs.push_back("wT." + layer.name);
    }

    int prevEnd = -1;     ///< last critical-chain completion
    int postedEnd = -1;   ///< last off-critical (posted) completion
    std::string prevAct = "act.in";

    if (!training) {
        // The serial span chain embodies the analytic fill time.
        Seconds slowest = 0.0;
        Seconds stageSum = 0.0;
        int stages = 0;
        for (const auto &layer : net.layers) {
            int base;
            if (layer.isConvLike()) {
                base = appendSpan(
                    p, forwardGroup(cfg, cfgKey, net, layer, batchSize),
                    layer.name, layer.kind, false, false);
                nameStage(p, base, layer.name, prevAct,
                          "w." + layer.name, "act." + layer.name,
                          kStageCount);
                prevAct = "act." + layer.name;
            } else {
                base = appendSpan(p,
                                  auxGroup(cfg, cfgKey, layer,
                                           batchSize),
                                  layer.name, layer.kind, false, false);
                Instr &act = p.instrs[std::size_t(base)];
                act.label = "post " + layer.name;
                act.reads = {prevAct};
                act.writes = {"act." + layer.name};
                p.instrs[std::size_t(base + 1)].label =
                    "sync " + layer.name;
                prevAct = "act." + layer.name;
            }
            chainAfter(p, base, prevEnd);
            prevEnd = int(p.instrs.size()) - 1;
            // Per-image stage time; the pipeline overlaps images.
            const Seconds stage = spanLatency(p, p.spans.back());
            slowest = std::max(slowest, stage);
            if (layer.isConvLike()) {
                stageSum += stage;
                ++stages;
            }
        }

        // ISAAC balances its pipeline by replicating the weights of
        // the window-heavy early layers over spare crossbars; a
        // perfectly balanced pipeline would run at the mean stage
        // time, and the residual imbalance after replication is
        // modelled as 1.5x.
        constexpr double kPipelineImbalance = 1.5;
        if (stages > 0) {
            const Seconds balanced =
                kPipelineImbalance * stageSum / double(stages);
            slowest = std::min(slowest, balanced);
        }

        // Weight reloading when the model exceeds on-chip RRAM:
        // stream the weights from DRAM and reprogram once per batch.
        if (wsWeightsReloaded(cfg, net, false)) {
            const int base =
                appendSpan(p, reloadGroup(cfg, net, false),
                           "weight-reload", LayerKind::Conv, false,
                           false);
            p.instrs[std::size_t(base)].label = "stream weights";
            p.instrs[std::size_t(base)].writes = {"w.stream"};
            p.instrs[std::size_t(base + 1)].label = "program weights";
            p.instrs[std::size_t(base + 1)].reads = {"w.stream"};
            p.instrs[std::size_t(base + 2)].label = "sync reload";
            chainAfter(p, base, prevEnd);
            prevEnd = int(p.instrs.size()) - 1;
        }

        // ISAAC pipelining: fill once (the serial span chain above),
        // then one image per slowest stage -- the drain span.
        LayerGroup drain;
        drain.instrs.resize(1);
        drain.instrs[0].op = Op::Sync;
        drain.instrs[0].unit = Unit::Pipeline;
        drain.instrs[0].duration =
            double(batchSize - 1) * slowest;
        const int base = appendSpan(p, std::move(drain), "drain",
                                    LayerKind::Conv, true, false);
        p.instrs[std::size_t(base)].label = "drain";
        chainAfter(p, base, prevEnd);
        prevEnd = base;
    } else {
        // Forward, error backpropagation, and weight-gradient passes
        // all run on the crossbars with comparable window/bit-cycle
        // structure. PipeLayer pipelines images through training too,
        // but -- unlike inference -- the pipeline cannot be balanced
        // by replicating the early layers' weights, because every
        // replica would have to be reprogrammed at each update. The
        // batch therefore drains at the raw slowest stage, three
        // passes deep. The per-layer spans are posted off-critical
        // (their costs are reported, their time is hidden); the
        // critical chain is pipe spans -> drain -> reload.
        Seconds slowest = 0.0;
        const double passes = 3.0;
        for (const auto &layer : net.layers) {
            if (layer.isConvLike()) {
                const LayerGroup fwd =
                    forwardGroup(cfg, cfgKey, net, layer, batchSize);

                int base = appendSpan(p, fwd, layer.name, layer.kind,
                                      false, true);
                nameStage(p, base, layer.name, prevAct,
                          "w." + layer.name, "act." + layer.name,
                          kStageCount);
                chainAfter(p, base, postedEnd);
                postedEnd = int(p.instrs.size()) - 1;
                const Seconds stage =
                    spanLatency(p, p.spans.back());
                prevAct = "act." + layer.name;

                // The backward pass reads the transposed-weight copy;
                // the update pass writes activations/errors to RRAM
                // and reprograms the weight cells (original +
                // transposed). The pipelined abstraction does not
                // track the per-layer gradient chain, so every
                // backward stage consumes the streaming loss gradient.
                const double aBits = cfg.activationBits;
                const double actWrites =
                    double(layer.inputCount()) * aBits * batchSize;
                base = appendSpan(
                    p,
                    withArrayStore(fwd, actWrites,
                                   actWrites *
                                       cfg.device.avgWriteEnergy(),
                                   0.0, kMove),
                    layer.name + ".bwd", layer.kind, false, true);
                nameStage(p, base, layer.name + ".bwd", "grad.out",
                          "wT." + layer.name, "grad." + layer.name,
                          kStageCount + 1);
                p.instrs[std::size_t(base + kExtra)].label =
                    "store-acts " + layer.name;
                p.instrs[std::size_t(base + kExtra)].reads = {
                    "grad." + layer.name};
                chainAfter(p, base, postedEnd);
                postedEnd = int(p.instrs.size()) - 1;

                const double weightCellWrites =
                    2.0 * double(layer.weightCount()) * cfg.weightBits;
                base = appendSpan(
                    p,
                    withArrayStore(fwd, weightCellWrites,
                                   weightCellWrites *
                                       cfg.device.avgWriteEnergy(),
                                   weightCellWrites > 0.0
                                       ? cfg.device.tWrite
                                       : 0.0,
                                   kMove),
                    layer.name + ".upd", layer.kind, false, true);
                nameStage(p, base, layer.name + ".upd",
                          "grad." + layer.name, "w." + layer.name,
                          "dw." + layer.name, kStageCount + 1);
                p.instrs[std::size_t(base + kExtra)].label =
                    "program-weights " + layer.name;
                p.instrs[std::size_t(base + kExtra)].reads = {
                    "dw." + layer.name};
                chainAfter(p, base, postedEnd);
                postedEnd = int(p.instrs.size()) - 1;

                slowest = std::max(slowest, stage);

                // Critical chain: three pipelined passes of this
                // stage (fill += passes * stage).
                LayerGroup pipe;
                pipe.instrs.resize(1);
                pipe.instrs[0].op = Op::Sync;
                pipe.instrs[0].unit = Unit::Pipeline;
                pipe.instrs[0].duration = passes * stage;
                base = appendSpan(p, std::move(pipe),
                                  "pipe." + layer.name, layer.kind,
                                  true, false);
                p.instrs[std::size_t(base)].label =
                    "pipe " + layer.name;
                chainAfter(p, base, prevEnd);
                prevEnd = base;
            } else {
                const LayerGroup aux =
                    auxGroup(cfg, cfgKey, layer, batchSize);
                for (int pass = 0; pass < 2; ++pass) {
                    const bool bwd = pass == 1;
                    const std::string name =
                        bwd ? layer.name + ".bwd" : layer.name;
                    const int base =
                        appendSpan(p, aux, name, layer.kind, false,
                                   true);
                    Instr &act = p.instrs[std::size_t(base)];
                    act.label = "post " + name;
                    act.reads = {bwd ? std::string("grad.out")
                                     : prevAct};
                    act.writes = {
                        (bwd ? "grad." : "act.") + name};
                    p.instrs[std::size_t(base + 1)].label =
                        "sync " + name;
                    chainAfter(p, base, postedEnd);
                    postedEnd = int(p.instrs.size()) - 1;
                    if (!bwd)
                        prevAct = "act." + name;
                }
            }
        }

        // Images pipeline through the three passes at the unbalanced
        // slowest stage.
        LayerGroup drain;
        drain.instrs.resize(1);
        drain.instrs[0].op = Op::Sync;
        drain.instrs[0].unit = Unit::Pipeline;
        drain.instrs[0].duration =
            double(batchSize - 1) * passes * slowest;
        int base = appendSpan(p, std::move(drain), "drain",
                              LayerKind::Conv, true, false);
        p.instrs[std::size_t(base)].label = "drain";
        chainAfter(p, base, prevEnd);
        prevEnd = base;

        // The reload LayerCost lands after the per-layer rows, as the
        // engine ordered it; its latency joins the total by one
        // commuted addition (see file comment).
        if (wsWeightsReloaded(cfg, net, true)) {
            base = appendSpan(p, reloadGroup(cfg, net, true),
                              "weight-reload", LayerKind::Conv, false,
                              false);
            p.instrs[std::size_t(base)].label = "stream weights";
            p.instrs[std::size_t(base)].writes = {"w.stream"};
            p.instrs[std::size_t(base + 1)].label = "program weights";
            p.instrs[std::size_t(base + 1)].reads = {"w.stream"};
            p.instrs[std::size_t(base + 2)].label = "sync reload";
            chainAfter(p, base, prevEnd);
            prevEnd = int(p.instrs.size()) - 1;
        }
    }

    sealProgram(p, prevEnd);
    validate(p);
    return p;
}

} // namespace ir
} // namespace inca
