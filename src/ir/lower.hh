/**
 * @file
 * Network -> IR lowering for both dataflows.
 *
 * This is the single source of truth for the per-layer cost math that
 * used to live inside core::IncaEngine and baseline::BaselineEngine:
 * the engines now call lowerInca()/lowerWs() and walk the resulting
 * instruction stream (ir::analyticWalk), and the event backend
 * (src/event) executes the very same stream through its event queue.
 *
 * Per-layer instruction groups are memoized in the process-wide
 * EvalCaches under the same names the engines used ("inca.layer",
 * "ws.layer"), keyed exactly as before (config + layer shape + batch
 * + phase tag), so cache behavior -- including the hit/miss stream
 * the observability tests pin -- is unchanged by the refactor.
 *
 * Overlap: with opts.overlap set, IS inference is lowered with
 * double-buffered load/compute dependencies (a load may prefetch as
 * soon as the previous load retires, bounded two layers ahead; a
 * layer's MVM waits only for the previous layer's data, not for the
 * serializing sync). Every relaxed dependency targets an instruction
 * that finishes no later than the serial program's span boundary, so
 * the event-backend makespan can only decrease -- and the instruction
 * set and stats are identical, so dynamic energy is unchanged. All
 * other (engine, phase) combinations lower to the serial program
 * under either flag: the WS pipeline already overlaps analytically,
 * and IS training's update/backward concurrency is already folded
 * into the update layer's exposed latency.
 */

#ifndef INCA_IR_LOWER_HH
#define INCA_IR_LOWER_HH

#include "arch/config.hh"
#include "ir/ir.hh"
#include "nn/network.hh"

namespace inca {
namespace ir {

/** Lowering knobs. */
struct LowerOptions
{
    /** Inter-layer load/compute overlap (see file comment). */
    bool overlap = false;
};

/** Lower a network for the INCA chip (IS dataflow). */
Program lowerInca(const arch::IncaConfig &cfg,
                  const nn::NetworkDesc &net, arch::Phase phase,
                  int batchSize, const LowerOptions &opts = {});

/** Lower a network for the WS baseline chip. */
Program lowerWs(const arch::BaselineConfig &cfg,
                const nn::NetworkDesc &net, arch::Phase phase,
                int batchSize, const LowerOptions &opts = {});

/**
 * Effective time per windowed IS convolution read: the read pulse
 * plus the exposed half of the previous write-back, overlapped with
 * the shared ADC drain (what core::IncaEngine::readCycleTime
 * delegates to).
 */
Seconds incaReadCycleTime(const arch::IncaConfig &cfg, int batchSize);

/** True when the network's weights exceed total on-chip buffers. */
bool incaWeightsStreamed(const arch::IncaConfig &cfg,
                         const nn::NetworkDesc &net);

/** True when the weights do not fit the WS chip's RRAM capacity. */
bool wsWeightsReloaded(const arch::BaselineConfig &cfg,
                       const nn::NetworkDesc &net, bool training);

/** Buffer bytes a WS layer's pipeline stage can claim. */
double wsBufferShare(const arch::BaselineConfig &cfg,
                     const nn::NetworkDesc &net,
                     const nn::LayerDesc &layer);

} // namespace ir
} // namespace inca

#endif // INCA_IR_LOWER_HH
