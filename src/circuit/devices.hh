/**
 * @file
 * Alternative PIM device technologies (paper Section VI).
 *
 * The paper's future work: "IS dataflow is widely applicable to PIM
 * designs beyond RRAM, therefore, we leave IS implementation into
 * other designs as our future work to exploit more stable properties
 * of other hardware candidates." This module implements that study:
 * device presets for the main nonvolatile/volatile PIM candidates,
 * each expressed in the same RramDevice parameterization the engines
 * consume, plus the endurance rating that drives the Section-VI
 * trade. Values are representative literature numbers (order-of-
 * magnitude fidelity; the comparison's purpose is the trend, exactly
 * like the paper's framing).
 */

#ifndef INCA_CIRCUIT_DEVICES_HH
#define INCA_CIRCUIT_DEVICES_HH

#include <string>
#include <vector>

#include "circuit/rram.hh"

namespace inca {
namespace circuit {

/** Candidate PIM storage technologies. */
enum class DeviceTechnology
{
    Rram,    ///< the paper's TaOx/HfOx-class device (Table II)
    Pcm,     ///< phase-change memory: slower, hotter writes
    Fefet,   ///< ferroelectric FET: field-driven, very cheap writes
    SramCim, ///< 6T SRAM compute-in-memory: fast, volatile, large
};

/** A device preset: electrical model + reliability + density. */
struct DevicePreset
{
    DeviceTechnology technology = DeviceTechnology::Rram;
    std::string name;
    RramDevice device;       ///< electrical parameters
    double endurance = 1e9;  ///< program/erase cycles per cell
    bool nonVolatile = true; ///< volatile cells leak standby power
    /** Relative cell footprint vs. the paper's 2T1R (area factor). */
    double cellAreaFactor = 1.0;
    /** Standby power per cell for volatile technologies. */
    Watts standbyPowerPerCell = 0.0;
};

/** The paper's Table II RRAM. */
DevicePreset rramPreset();

/** Phase-change memory preset. */
DevicePreset pcmPreset();

/** Ferroelectric-FET preset. */
DevicePreset fefetPreset();

/** 6T SRAM compute-in-memory preset. */
DevicePreset sramCimPreset();

/** All presets, RRAM first. */
std::vector<DevicePreset> allDevicePresets();

/** Look a preset up by technology. */
DevicePreset presetFor(DeviceTechnology technology);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_DEVICES_HH
