/**
 * @file
 * Technology-node scaling rules.
 *
 * The paper lays the 2T1R cell out in TSMC 65 nm and scales the circuit
 * results to the accelerator's 22 nm node with a linear scale factor of
 * 0.34 (Table II). Classic constant-field scaling by factor s gives
 * area x s^2, dynamic energy x s (CV^2 with V partially scaled), and
 * delay x s.
 */

#ifndef INCA_CIRCUIT_TECH_HH
#define INCA_CIRCUIT_TECH_HH

#include "common/units.hh"

namespace inca {

class CacheKey;

namespace circuit {

/** Linear scaling between a layout node and a target node. */
struct TechScaling
{
    double layoutNodeNm = 65.0;  ///< node the circuit was laid out in
    double targetNodeNm = 22.0;  ///< node the accelerator is built in
    double linearFactor = 0.34;  ///< paper's Table II "scale factor"

    /** Area scales with the square of the linear factor. */
    double areaFactor() const { return linearFactor * linearFactor; }

    /** Dynamic energy scales roughly linearly. */
    double energyFactor() const { return linearFactor; }

    /** Gate delay scales roughly linearly. */
    double delayFactor() const { return linearFactor; }

    /** Scale a layout-node area to the target node. */
    SquareMeters scaleArea(SquareMeters a) const
    {
        return a * areaFactor();
    }

    /** Scale a layout-node energy to the target node. */
    Joules scaleEnergy(Joules e) const { return e * energyFactor(); }

    /** Scale a layout-node delay to the target node. */
    Seconds scaleDelay(Seconds t) const { return t * delayFactor(); }
};

/** The paper's 65 nm -> 22 nm configuration. */
TechScaling paperScaling();

/** Append every field of @p t to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const TechScaling &t);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_TECH_HH
