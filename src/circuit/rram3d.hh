/**
 * @file
 * 3D RRAM structure comparison: VRRAM vs. HRRAM (paper Section II-A).
 *
 * Two vertically-integrated structures compete: VRRAM stacks
 * horizontal word planes and is limited by the number of layers the
 * fab can stack; HRRAM stacks vertical planes horizontally and is
 * limited by the plane size. INCA "demands a design with highly
 * stacked 3D RRAM but not a large size plane. Therefore, we chose
 * HRRAM" -- this module makes that trade quantitative: given a
 * fabrication envelope, which structure can realize a requested
 * (plane size, stack count) and at what projected footprint.
 */

#ifndef INCA_CIRCUIT_RRAM3D_HH
#define INCA_CIRCUIT_RRAM3D_HH

#include <cstdint>
#include <string>

#include "circuit/cells.hh"
#include "common/units.hh"

namespace inca {
namespace circuit {

/** The two 3D integration styles of Fig. 2. */
enum class Stack3DStyle
{
    Vrram, ///< vertically stacked horizontal word planes
    Hrram, ///< horizontally stacked vertical planes (INCA's choice)
};

/** @return a short name for @p style. */
const char *stack3DStyleName(Stack3DStyle style);

/** Fabrication envelope for 3D integration. */
struct FabricationLimits
{
    /** Max vertically stacked layers (BiCS-class processes). */
    int maxVerticalLayers = 16;
    /** Max plane side (cells) before wordline RC degrades reads. */
    int maxPlaneSide = 64;
    /** Max horizontally stacked vertical planes (encapsulation
     * technique of [64] + transistor stacking [45], [56]). */
    int maxHorizontalPlanes = 128;
};

/** Feasibility + footprint of one requested 3D geometry. */
struct Structure3DReport
{
    Stack3DStyle style = Stack3DStyle::Hrram;
    bool feasible = false;
    std::string reason;           ///< why infeasible, when so
    std::int64_t cells = 0;       ///< total cells in the stack
    SquareMeters footprint = 0.0; ///< projected 2D area
};

/**
 * Evaluate whether @p style can realize a stack of @p planes planes
 * of @p planeSide x @p planeSide cells under @p limits, and its
 * projected footprint with the given cell.
 *
 * VRRAM: the planes stack vertically -> plane count is limited by
 * maxVerticalLayers and the footprint is one plane's area.
 * HRRAM: the planes stack horizontally -> plane count is limited by
 * maxHorizontalPlanes, the plane side by maxPlaneSide, and the
 * footprint is planes x (plane side x cell width) deep by the
 * vertical-stacking-amortized cell length.
 */
Structure3DReport evaluate3D(Stack3DStyle style, int planeSide,
                             int planes, const Cell2T1R &cell,
                             const FabricationLimits &limits = {});

/**
 * INCA's Table II geometry (16 x 16 x 64) under the default
 * envelope: HRRAM feasible, VRRAM not -- the paper's Section II-A
 * argument.
 */
Structure3DReport incaChoice(Stack3DStyle style);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_RRAM3D_HH
