#include "circuit/digital.hh"

#include <algorithm>

namespace inca {
namespace circuit {

DigitalModel
makeDigital()
{
    return DigitalModel{};
}

Joules
adderTreeEnergy(const DigitalModel &m, double leaves, bool wide)
{
    const double adds = std::max(0.0, leaves - 1.0);
    return adds * (wide ? m.adder16bit : m.adder8bit);
}

} // namespace circuit
} // namespace inca
