#include "circuit/digital.hh"

#include <algorithm>

#include "common/cache.hh"

namespace inca {
namespace circuit {

DigitalModel
makeDigital()
{
    return DigitalModel{};
}

Joules
adderTreeEnergy(const DigitalModel &m, double leaves, bool wide)
{
    const double adds = std::max(0.0, leaves - 1.0);
    return adds * (wide ? m.adder16bit : m.adder8bit);
}

void
appendKey(CacheKey &key, const DigitalModel &m)
{
    key.add("digital")
        .add(m.adder8bit)
        .add(m.adder16bit)
        .add(m.shiftAccumulate)
        .add(m.registerAccess)
        .add(m.andGate)
        .add(m.lutLookup)
        .add(m.reluOp)
        .add(m.maxPoolCompare)
        .add(m.adderDelay);
}

} // namespace circuit
} // namespace inca
