#include "circuit/rram.hh"

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace circuit {

Joules
RramDevice::avgReadEnergy(double onFraction) const
{
    inca_assert(onFraction >= 0.0 && onFraction <= 1.0,
                "on-fraction %f out of [0,1]", onFraction);
    return onFraction * readEnergyOn() +
           (1.0 - onFraction) * readEnergyOff();
}

Joules
RramDevice::avgWriteEnergy(double onFraction) const
{
    inca_assert(onFraction >= 0.0 && onFraction <= 1.0,
                "on-fraction %f out of [0,1]", onFraction);
    return onFraction * writeEnergyOn() +
           (1.0 - onFraction) * writeEnergyOff();
}

RramDevice
paperDevice()
{
    return RramDevice{};
}

void
appendKey(CacheKey &key, const RramDevice &d)
{
    key.add("rram")
        .add(d.rOn)
        .add(d.rOff)
        .add(d.vRead)
        .add(d.vWrite)
        .add(d.tRead)
        .add(d.tWrite)
        .add(d.pOnCell)
        .add(d.pOffCell);
}

} // namespace circuit
} // namespace inca
