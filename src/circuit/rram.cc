#include "circuit/rram.hh"

#include "common/logging.hh"

namespace inca {
namespace circuit {

Joules
RramDevice::avgReadEnergy(double onFraction) const
{
    inca_assert(onFraction >= 0.0 && onFraction <= 1.0,
                "on-fraction %f out of [0,1]", onFraction);
    return onFraction * readEnergyOn() +
           (1.0 - onFraction) * readEnergyOff();
}

Joules
RramDevice::avgWriteEnergy(double onFraction) const
{
    inca_assert(onFraction >= 0.0 && onFraction <= 1.0,
                "on-fraction %f out of [0,1]", onFraction);
    return onFraction * writeEnergyOn() +
           (1.0 - onFraction) * writeEnergyOff();
}

RramDevice
paperDevice()
{
    return RramDevice{};
}

} // namespace circuit
} // namespace inca
