#include "circuit/devices.hh"

#include "common/logging.hh"

namespace inca {
namespace circuit {

DevicePreset
rramPreset()
{
    DevicePreset p;
    p.technology = DeviceTechnology::Rram;
    p.name = "RRAM (Table II)";
    p.device = paperDevice();
    p.endurance = 1e9;
    p.nonVolatile = true;
    p.cellAreaFactor = 1.0;
    return p;
}

DevicePreset
pcmPreset()
{
    DevicePreset p;
    p.technology = DeviceTechnology::Pcm;
    p.name = "PCM";
    p.device = paperDevice();
    // PCM: similar read path; SET/RESET needs melt-quench current --
    // roughly an order of magnitude more write energy and time.
    p.device.tWrite = 150e-9;
    p.device.vWrite = 1.8;
    p.endurance = 1e8;
    p.nonVolatile = true;
    p.cellAreaFactor = 1.2;
    return p;
}

DevicePreset
fefetPreset()
{
    DevicePreset p;
    p.technology = DeviceTechnology::Fefet;
    p.name = "FeFET";
    p.device = paperDevice();
    // Field-driven polarization switching: negligible write current,
    // short pulses; reads through the FET channel.
    p.device.tWrite = 20e-9;
    p.device.vWrite = 3.0;
    p.device.rOn = 1e6;   // channel-resistance read path
    p.device.rOff = 1e9;
    p.device.pOnCell = 0.25e-6;
    p.device.pOffCell = 0.25e-9;
    p.endurance = 1e10;
    p.nonVolatile = true;
    p.cellAreaFactor = 0.8;
    return p;
}

DevicePreset
sramCimPreset()
{
    DevicePreset p;
    p.technology = DeviceTechnology::SramCim;
    p.name = "SRAM-CIM";
    p.device = paperDevice();
    // 6T cell: ~1 ns writes at logic voltage, no resistive states --
    // model the bit-line discharge as a low-resistance read.
    p.device.tWrite = 1e-9;
    p.device.tRead = 1e-9;
    p.device.vWrite = 0.8;
    p.device.vRead = 0.8;
    p.device.rOn = 10e3;
    p.device.rOff = 1e9;
    p.device.pOnCell = 0.8 * 0.8 / 10e3;
    p.device.pOffCell = 0.64e-9;
    p.endurance = 1e16; // effectively unlimited
    p.nonVolatile = false;
    p.cellAreaFactor = 6.0; // 6T+compute vs. a stacked 2T1R column
    p.standbyPowerPerCell = 5e-12; // retention leakage
    return p;
}

std::vector<DevicePreset>
allDevicePresets()
{
    return {rramPreset(), pcmPreset(), fefetPreset(),
            sramCimPreset()};
}

DevicePreset
presetFor(DeviceTechnology technology)
{
    switch (technology) {
      case DeviceTechnology::Rram: return rramPreset();
      case DeviceTechnology::Pcm: return pcmPreset();
      case DeviceTechnology::Fefet: return fefetPreset();
      case DeviceTechnology::SramCim: return sramCimPreset();
    }
    panic("unknown device technology %d", int(technology));
}

} // namespace circuit
} // namespace inca
