/**
 * @file
 * SAR ADC and 1-bit DAC models.
 *
 * The paper's ADC accounting (Section V-B-1, citing FORMS [67]):
 * "one 8-bit ADC consumes energy as much as four 4-bit ADCs, not two",
 * and "four 4-bit ADC at 2.1 GHz can replace one 8-bit at 1.2 GHz".
 * We therefore model conversion energy as E(b) = E4 * 2^((b - 4) / 2),
 * which quadruples per +4 bits (E8 == 4 * E4) as the paper states.
 * Area is anchored to the paper's Table V totals (see arch/area).
 */

#ifndef INCA_CIRCUIT_ADC_HH
#define INCA_CIRCUIT_ADC_HH

#include "common/units.hh"

namespace inca {
namespace circuit {

/** A successive-approximation ADC of a given resolution. */
struct AdcModel
{
    int bits = 8;                ///< resolution
    double frequencyHz = 1.2e9;  ///< sample clock
    Joules energyPerConversion = 0.0;
    SquareMeters area = 0.0;

    /** Time for one conversion (one bit decision per clock). */
    Seconds conversionLatency() const
    {
        return double(bits) / frequencyHz;
    }
};

/**
 * Build an ADC of @p bits using the paper's scaling anchors:
 * 4-bit at 2.1 GHz and 8-bit at 1.2 GHz, with E8 == 4 * E4.
 */
AdcModel makeAdc(int bits);

/** Reference conversion energy of the 4-bit anchor. */
Joules adc4AnchorEnergy();

/** A 1-bit DAC / wordline driver. */
struct DacModel
{
    Joules energyPerActivation = 25e-15; ///< per driven line per cycle
    SquareMeters area = 0.166e-12;       ///< from Table V per-DAC area
};

/** The 1-bit DAC both architectures use (Table II / Table V). */
DacModel makeDac();

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_ADC_HH
