/**
 * @file
 * Sneak-path current analysis (paper Sections II-A and IV-A).
 *
 * In a 1R crossbar, reading one selected cell also forward-biases
 * chains of unselected cells (row -> unselected cell -> column ->
 * unselected cell -> ...), producing a parasitic current that grows
 * with the array size and collapses the read margin -- "the sneak
 * path current is inevitable in 1R-based arrays because RRAM is like
 * a variable resistor". Access transistors (1T1R, and INCA's 2T1R
 * with row- AND column-direction gating) cut every such chain.
 *
 * We use the standard worst-case lumped model: with one cell selected
 * in an n x n array and all cells in the low-resistance state, the
 * dominant sneak network is (n-1) parallel chains of three cells in
 * series through (n-1)^2 intermediate cells, giving an equivalent
 * sneak resistance of roughly 3R / (n-1) in the large-n limit.
 */

#ifndef INCA_CIRCUIT_SNEAK_HH
#define INCA_CIRCUIT_SNEAK_HH

#include "circuit/rram.hh"
#include "common/units.hh"

namespace inca {
namespace circuit {

/** Worst-case sneak analysis of one read in an n x n crossbar. */
struct SneakAnalysis
{
    double selectedCurrent = 0.0; ///< current through the target cell
    double sneakCurrent = 0.0;    ///< parasitic current, 1R worst case
    double readMargin = 0.0;      ///< selected / (selected + sneak)
};

/**
 * Analyze a 1R (selector-free) n x n crossbar read of a cell in state
 * @p selectedOn with the unselected cells in the on state (worst
 * case).
 */
SneakAnalysis sneak1R(const RramDevice &device, int arraySize,
                      bool selectedOn = true);

/**
 * Analyze a transistor-gated read (1T1R or 2T1R): every sneak chain
 * is cut by an off transistor, leaving only subthreshold leakage
 * through the unselected access devices.
 *
 * @param offLeakagePerCell subthreshold leakage per gated cell
 */
SneakAnalysis sneakGated(const RramDevice &device, int arraySize,
                         bool selectedOn = true,
                         double offLeakagePerCell = 1e-12);

/**
 * The largest 1R array whose worst-case read margin stays above
 * @p minMargin -- why selector-free crossbars cannot scale and why
 * INCA pays two transistors per cell.
 */
int maxArraySize1R(const RramDevice &device, double minMargin);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_SNEAK_HH
