/**
 * @file
 * Cell geometry models: baseline 1T1R and INCA's 2T1R.
 *
 * The paper lays both cells out at 65 nm (Table II: 1T1R 540 x 485 nm,
 * 2T1R 600 x 700 nm) and scales them with the 0.34 factor; after
 * scaling, a baseline cell occupies 0.030 um^2. INCA stacks 16 cells
 * vertically over one footprint, so 16 INCA cells project to only
 * 0.048 um^2 (Section V-B-6).
 */

#ifndef INCA_CIRCUIT_CELLS_HH
#define INCA_CIRCUIT_CELLS_HH

#include "circuit/tech.hh"
#include "common/units.hh"

namespace inca {

class CacheKey;

namespace circuit {

/** The standard 1T1R crossbar cell of the WS baseline. */
struct Cell1T1R
{
    Meters width = 540e-9;  ///< layout width at the layout node
    Meters length = 485e-9; ///< layout length at the layout node
    TechScaling scaling = paperScaling();

    /** Layout-node footprint. */
    SquareMeters rawArea() const { return width * length; }

    /** Footprint at the accelerator node. */
    SquareMeters scaledArea() const
    {
        return scaling.scaleArea(rawArea());
    }
};

/** INCA's 2T1R cell with vertical 3D stacking. */
struct Cell2T1R
{
    Meters width = 600e-9;  ///< layout width at the layout node
    Meters length = 700e-9; ///< layout length at the layout node
    int verticalStack = 16; ///< cells stacked over one footprint
    TechScaling scaling = paperScaling();

    /** Layout-node footprint of one stacked column. */
    SquareMeters rawArea() const { return width * length; }

    /** Footprint at the accelerator node (whole 16-cell column). */
    SquareMeters scaledArea() const
    {
        return scaling.scaleArea(rawArea());
    }

    /** Projected area charged to ONE cell (footprint / stack height). */
    SquareMeters areaPerCell() const
    {
        return scaledArea() / double(verticalStack);
    }
};

/** Append every field of @p c to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const Cell1T1R &c);

/** Append every field of @p c to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const Cell2T1R &c);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_CELLS_HH
