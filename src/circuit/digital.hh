/**
 * @file
 * Digital post-processing component models.
 *
 * Small fixed-function units both architectures share (Table II notes
 * "the simulation of INCA and the baseline employed the same peripheral
 * components"): adders / adder trees, shift-accumulators, registers,
 * AND gates (INCA's ReLU-gradient trick in backprop), the max-pool LUT,
 * and ReLU / max-pool post-processing units. Energies are per-operation
 * constants at 22 nm in the range NeuroSim reports; they are shared by
 * both architectures so they cancel to first order in the comparisons.
 */

#ifndef INCA_CIRCUIT_DIGITAL_HH
#define INCA_CIRCUIT_DIGITAL_HH

#include "common/units.hh"

namespace inca {

class CacheKey;

namespace circuit {

/** Per-operation energy/latency constants for digital helpers. */
struct DigitalModel
{
    Joules adder8bit = 30e-15;       ///< one 8-bit add
    Joules adder16bit = 55e-15;      ///< one 16-bit add (adder tree)
    Joules shiftAccumulate = 60e-15; ///< one shift + accumulate step
    Joules registerAccess = 15e-15;  ///< one 8-bit register read/write
    Joules andGate = 2e-15;          ///< one AND (ReLU gradient)
    Joules lutLookup = 40e-15;       ///< max-pool position LUT lookup
    Joules reluOp = 10e-15;          ///< one ReLU evaluation
    Joules maxPoolCompare = 25e-15;  ///< one pooling comparison

    Seconds adderDelay = 0.2e-9;     ///< adder-tree stage delay
};

/** Shared 22 nm digital constants. */
DigitalModel makeDigital();

/**
 * Energy of an adder-tree reduction over @p leaves operands of the
 * given per-add energy ((leaves - 1) adds).
 */
Joules adderTreeEnergy(const DigitalModel &m, double leaves,
                       bool wide = true);

/** Append every field of @p m to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const DigitalModel &m);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_DIGITAL_HH
