#include "circuit/tech.hh"

namespace inca {
namespace circuit {

TechScaling
paperScaling()
{
    return TechScaling{65.0, 22.0, 0.34};
}

} // namespace circuit
} // namespace inca
