#include "circuit/tech.hh"

#include "common/cache.hh"

namespace inca {
namespace circuit {

TechScaling
paperScaling()
{
    return TechScaling{65.0, 22.0, 0.34};
}

void
appendKey(CacheKey &key, const TechScaling &t)
{
    key.add("tech")
        .add(t.layoutNodeNm)
        .add(t.targetNodeNm)
        .add(t.linearFactor);
}

} // namespace circuit
} // namespace inca
