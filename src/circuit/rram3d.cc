#include "circuit/rram3d.hh"

#include "common/logging.hh"

namespace inca {
namespace circuit {

const char *
stack3DStyleName(Stack3DStyle style)
{
    switch (style) {
      case Stack3DStyle::Vrram: return "VRRAM";
      case Stack3DStyle::Hrram: return "HRRAM";
    }
    panic("unknown 3D style %d", int(style));
}

Structure3DReport
evaluate3D(Stack3DStyle style, int planeSide, int planes,
           const Cell2T1R &cell, const FabricationLimits &limits)
{
    inca_assert(planeSide > 0 && planes > 0, "bad 3D geometry");
    Structure3DReport r;
    r.style = style;
    r.cells = std::int64_t(planeSide) * planeSide * planes;

    if (style == Stack3DStyle::Vrram) {
        if (planes > limits.maxVerticalLayers) {
            r.feasible = false;
            r.reason = "plane count exceeds the vertical layer limit";
            return r;
        }
        r.feasible = true;
        // Horizontal word planes: the footprint is one plane.
        r.footprint = double(planeSide) * planeSide *
                      cell.scaling.scaleArea(cell.rawArea());
        return r;
    }

    // HRRAM.
    if (planeSide > limits.maxPlaneSide) {
        r.feasible = false;
        r.reason = "plane side exceeds the vertical plane size limit";
        return r;
    }
    if (planes > limits.maxHorizontalPlanes) {
        r.feasible = false;
        r.reason = "plane count exceeds the horizontal stacking limit";
        return r;
    }
    r.feasible = true;
    // Vertical planes laid side by side: cells within a plane stack
    // vertically (the verticalStack factor), so the projected
    // footprint charges one cell area per stacked column.
    const double columns =
        double(r.cells) / double(cell.verticalStack);
    r.footprint = columns * cell.scaledArea();
    return r;
}

Structure3DReport
incaChoice(Stack3DStyle style)
{
    return evaluate3D(style, 16, 64, Cell2T1R{});
}

} // namespace circuit
} // namespace inca
