#include "circuit/sneak.hh"

#include "common/logging.hh"

namespace inca {
namespace circuit {

SneakAnalysis
sneak1R(const RramDevice &device, int arraySize, bool selectedOn)
{
    inca_assert(arraySize >= 2, "sneak analysis needs n >= 2");
    SneakAnalysis a;
    const double rSel = selectedOn ? device.rOn : device.rOff;
    a.selectedCurrent = device.vRead / rSel;

    // Worst case: all unselected cells on. The lumped sneak network
    // is (n-1)^2 three-cell series chains arranged as (n-1) parallel
    // row branches -> (n-1)^2 parallel middle cells -> (n-1) parallel
    // column branches:
    //   R_sneak = R/(n-1) + R/(n-1)^2 + R/(n-1)
    const double n1 = double(arraySize - 1);
    const double rSneak = device.rOn / n1 + device.rOn / (n1 * n1) +
                          device.rOn / n1;
    a.sneakCurrent = device.vRead / rSneak;
    a.readMargin =
        a.selectedCurrent / (a.selectedCurrent + a.sneakCurrent);
    return a;
}

SneakAnalysis
sneakGated(const RramDevice &device, int arraySize, bool selectedOn,
           double offLeakagePerCell)
{
    inca_assert(arraySize >= 2, "sneak analysis needs n >= 2");
    SneakAnalysis a;
    const double rSel = selectedOn ? device.rOn : device.rOff;
    a.selectedCurrent = device.vRead / rSel;
    // Every chain is cut; only the gated cells' subthreshold leakage
    // remains.
    const double cells = double(arraySize) * arraySize - 1.0;
    a.sneakCurrent = cells * offLeakagePerCell;
    a.readMargin =
        a.selectedCurrent / (a.selectedCurrent + a.sneakCurrent);
    return a;
}

int
maxArraySize1R(const RramDevice &device, double minMargin)
{
    inca_assert(minMargin > 0.0 && minMargin < 1.0,
                "margin must be in (0, 1)");
    int best = 0;
    for (int n = 2; n <= 4096; n *= 2) {
        if (sneak1R(device, n).readMargin >= minMargin)
            best = n;
        else
            break;
    }
    return best;
}

} // namespace circuit
} // namespace inca
