#include "circuit/adc.hh"

#include <cmath>

#include "common/cache.hh"
#include "common/logging.hh"

namespace inca {
namespace circuit {

namespace {

// Anchor: a 22 nm 4-bit SAR conversion, in the range NeuroSim-style
// frameworks report. The absolute value cancels in all INCA/baseline
// ratios; only the E(b) scaling law affects the reproduced shapes.
constexpr Joules kE4 = 0.25e-12;

// Frequency anchors from the paper's FORMS citation.
constexpr double kFreq4 = 2.1e9;
constexpr double kFreq8 = 1.2e9;

// Per-ADC area anchors derived from Table V (see arch/area.cc for the
// roll-up that reproduces the table): geometric interpolation between
// the 4-bit and 8-bit design points.
constexpr SquareMeters kArea8 = 1878e-12;
constexpr SquareMeters kArea4 = 284e-12;

} // namespace

Joules
adc4AnchorEnergy()
{
    return kE4;
}

AdcModel
makeAdc(int bits)
{
    inca_assert(bits >= 1 && bits <= 12, "unsupported ADC resolution %d",
                bits);
    static EvalCache<AdcModel> *cache =
        new EvalCache<AdcModel>("circuit.adc");
    CacheKey key;
    key.add("adc").add(bits);
    return cache->getOrCompute(key, [&] {
        AdcModel adc;
        adc.bits = bits;
        // Linear interpolation of clock between the two published
        // points, extrapolated gently outside [4, 8].
        adc.frequencyHz = kFreq4 + (kFreq8 - kFreq4) * (bits - 4) / 4.0;
        adc.energyPerConversion = kE4 * std::pow(2.0, (bits - 4) / 2.0);
        const double ratio = kArea8 / kArea4;
        adc.area = kArea4 * std::pow(ratio, (bits - 4) / 4.0);
        return adc;
    });
}

DacModel
makeDac()
{
    return DacModel{};
}

} // namespace circuit
} // namespace inca
