#include "circuit/cells.hh"

// Geometry models are header-only computations; this translation unit
// exists so the library has a home for future cell variants.

namespace inca {
namespace circuit {
} // namespace circuit
} // namespace inca
