#include "circuit/cells.hh"

#include "common/cache.hh"

namespace inca {
namespace circuit {

void
appendKey(CacheKey &key, const Cell1T1R &c)
{
    key.add("1t1r").add(c.width).add(c.length);
    appendKey(key, c.scaling);
}

void
appendKey(CacheKey &key, const Cell2T1R &c)
{
    key.add("2t1r").add(c.width).add(c.length).add(c.verticalStack);
    appendKey(key, c.scaling);
}

} // namespace circuit
} // namespace inca
