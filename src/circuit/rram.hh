/**
 * @file
 * RRAM device model.
 *
 * Parameters follow the paper's circuit-simulation setup (Table II):
 * R_on 240 kOhm, R_off 24 MOhm, 0.5 V / 10 ns reads, 1.1 V / 50 ns
 * writes, 1.03 uW on-cell and 10.42 nW off-cell read power. Energies
 * are derived as power x pulse width (reads) and V^2/R x pulse width
 * (writes), which is how NeuroSim-style frameworks account for cell
 * events.
 */

#ifndef INCA_CIRCUIT_RRAM_HH
#define INCA_CIRCUIT_RRAM_HH

#include "common/units.hh"

namespace inca {

class CacheKey;

namespace circuit {

/** A binary (1-bit per cell, as configured in Table II) RRAM device. */
struct RramDevice
{
    Ohms rOn = 240e3;       ///< low-resistance (on) state
    Ohms rOff = 24e6;       ///< high-resistance (off) state
    Volts vRead = 0.5;      ///< read voltage
    Volts vWrite = 1.1;     ///< write (program) voltage
    Seconds tRead = 10e-9;  ///< read pulse width
    Seconds tWrite = 50e-9; ///< write pulse width
    Watts pOnCell = 1.03e-6;   ///< on-cell power during a read
    Watts pOffCell = 10.42e-9; ///< off-cell power during a read

    /** Energy of reading one on-state cell. */
    Joules readEnergyOn() const { return pOnCell * tRead; }

    /** Energy of reading one off-state cell. */
    Joules readEnergyOff() const { return pOffCell * tRead; }

    /**
     * Expected read energy per cell given the probability @p onFraction
     * that a cell is in the on state (binary data: ~0.5).
     */
    Joules avgReadEnergy(double onFraction = 0.5) const;

    /** Energy of programming one cell into the on state. */
    Joules writeEnergyOn() const
    {
        return vWrite * vWrite / rOn * tWrite;
    }

    /** Energy of programming one cell into the off state. */
    Joules writeEnergyOff() const
    {
        return vWrite * vWrite / rOff * tWrite;
    }

    /** Expected write energy per cell for binary data. */
    Joules avgWriteEnergy(double onFraction = 0.5) const;

    /** On/off resistance ratio (sanity metric). */
    double onOffRatio() const { return rOff / rOn; }
};

/** The paper's Table II device. */
RramDevice paperDevice();

/** Append every field of @p d to @p key (cache canonicalization). */
void appendKey(CacheKey &key, const RramDevice &d);

} // namespace circuit
} // namespace inca

#endif // INCA_CIRCUIT_RRAM_HH
