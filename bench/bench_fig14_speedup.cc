/**
 * @file
 * Figure 14: speedup of INCA over the WS baseline for (a) inference
 * and (b) training, batch 64. The paper reports 1.9-4.8x in inference
 * and 6.8-18.6x in training for the heavy networks; the light models
 * reach two to three orders of magnitude in training thanks to the
 * plane-per-image batch parallelism.
 */

#include "bench_common.hh"

#include "common/table.hh"
#include "common/units.hh"
#include "nn/model_zoo.hh"
#include "sim/plot.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 14: speedup, INCA vs. WS baseline "
                  "(batch 64)");
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());

    const double paperInf[] = {4.6, 3.7, 1.9, 4.8, 201.0, 85.0};
    const double paperTrn[] = {18.6, 14.2, 7.2, 6.8, 1187.0, 363.0};

    TextTable t({"network", "INCA t/batch", "WS t/batch",
                 "inference speedup", "(paper)", "training speedup",
                 "(paper)"});
    const auto suite = nn::evaluationSuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto inf = sim::compare(inca, base, suite[i], 64,
                                      arch::Phase::Inference);
        const auto trn = sim::compare(inca, base, suite[i], 64,
                                      arch::Phase::Training);
        t.addRow({suite[i].name, formatSi(inf.inca.latency, "s"),
                  formatSi(inf.baseline.latency, "s"),
                  TextTable::ratio(inf.speedup()),
                  TextTable::ratio(paperInf[i]),
                  TextTable::ratio(trn.speedup()),
                  TextTable::ratio(paperTrn[i])});
    }
    t.print();

    std::vector<sim::Bar> infBars, trnBars;
    for (const auto &net : suite) {
        infBars.push_back(
            {net.name, sim::compare(inca, base, net, 64,
                                    arch::Phase::Inference)
                           .speedup()});
        trnBars.push_back(
            {net.name, sim::compare(inca, base, net, 64,
                                    arch::Phase::Training)
                           .speedup()});
    }
    for (const auto &bar : infBars)
        bench::JsonReport::instance().addPoint(
            "inference_speedup", bar.label, bar.value);
    for (const auto &bar : trnBars)
        bench::JsonReport::instance().addPoint(
            "training_speedup", bar.label, bar.value);
    sim::BarOptions bopt;
    bopt.logScale = true;
    bopt.unit = "x";
    std::printf("\n(a) inference speedup:\n%s",
                sim::barChart(infBars, bopt).c_str());
    std::printf("\n(b) training speedup:\n%s",
                sim::barChart(trnBars, bopt).c_str());
    std::printf("latency mechanics (Section V-B-2): INCA's RRAM "
                "writes pipeline behind the next read; the baseline's "
                "read cycle is ~2x INCA's write (%.0f vs %.0f ns).\n",
                arch::paperBaseline().readCycle() * 1e9,
                arch::paperInca().device.tWrite * 1e9);
}

void
BM_SpeedupSuite(benchmark::State &state)
{
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &net : suite) {
            total += sim::compare(inca, base, net, 64,
                                  arch::Phase::Inference)
                         .speedup();
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_SpeedupSuite);

} // namespace

INCA_BENCH_MAIN(report)
