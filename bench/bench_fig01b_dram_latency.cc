/**
 * @file
 * Figure 1b: DRAM loaded latency versus sustained-bandwidth
 * utilization. The paper's motivation figure (after [34], [49]) shows
 * latency increasing exponentially beyond ~80 % of the maximum
 * sustained bandwidth -- the reason off-chip-dependent WS designs
 * cannot simply buy more bandwidth.
 */

#include "bench_common.hh"

#include "common/table.hh"
#include "common/units.hh"
#include "memory/dram.hh"
#include "sim/plot.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 1b: DRAM latency vs. sustained-bandwidth "
                  "utilization");
    const memory::Dram dram = memory::paperDram();
    TextTable t({"utilization", "loaded latency", "vs. idle"});
    const double points[] = {0.0,  0.10, 0.20, 0.30, 0.40, 0.50,
                             0.60, 0.70, 0.80, 0.85, 0.90, 0.93,
                             0.95, 0.97, 0.99};
    const Seconds idle = dram.loadedLatency(0.0);
    for (double u : points) {
        const Seconds lat = dram.loadedLatency(u);
        t.addRow({TextTable::num(u, 2), formatSi(lat, "s"),
                  TextTable::ratio(lat / idle)});
    }
    t.print();
    std::vector<sim::Point> series;
    for (int u = 0; u <= 99; ++u) {
        series.push_back({double(u) / 100.0,
                          dram.loadedLatency(double(u) / 100.0) * 1e9});
        bench::JsonReport::instance().addPoint(
            "loaded_latency_ns", TextTable::num(series.back().x, 2),
            series.back().y);
    }
    sim::LineOptions lopt;
    lopt.logY = true;
    std::printf("\nlatency [ns] vs. utilization (the Fig. 1b curve):\n%s",
                sim::lineChart(series, lopt).c_str());
    std::printf("knee at %.0f%% utilization; latency roughly doubles "
                "per +3%% beyond it (paper: \"latency increases "
                "exponentially in the region beyond 80%%\")\n",
                100.0 * dram.kneeUtilization);
}

void
BM_LoadedLatencySweep(benchmark::State &state)
{
    const memory::Dram dram = memory::paperDram();
    for (auto _ : state) {
        double acc = 0.0;
        for (int i = 0; i < 99; ++i)
            acc += dram.loadedLatency(double(i) / 100.0);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_LoadedLatencySweep);

} // namespace

INCA_BENCH_MAIN(report)
