/**
 * @file
 * Serving-simulator overhead vs the bare batch cost model.
 *
 * A serving run pays for two things: the (stream, batch size) cost
 * table -- one event-backend execution per distinct batch size, the
 * same work the timeline driver does -- and the virtual-time event
 * loop that replays thousands of arrivals through the batching
 * scheduler. This bench pins the loop's price relative to the table:
 * each subject is timed through the cost table alone (isa "scalar")
 * and through the full simulate() (isa "serving"), interleaved at
 * repetition granularity so host drift cancels in the ratio the gate
 * compares. Both arms run cache-off, so each repetition recomputes
 * the same event executions. The committed baseline
 * (bench/baselines/BENCH_serving.json) pins the relative cost;
 * bench_compare --relative-to-scalar fails a confirmed >15%
 * regression of it.
 *
 *   bench_serving --json BENCH_serving.json
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "common/cache.hh"
#include "common/env.hh"
#include "nn/model_zoo.hh"
#include "serving/cost_model.hh"
#include "serving/simulator.hh"

namespace inca {
namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 9;
constexpr int kTrim = 2;

using Clock = std::chrono::steady_clock;
const Clock::time_point gEpoch = Clock::now();

struct Subject
{
    std::string name;
    serving::ServingSpec spec;
};

std::vector<Subject>
subjects()
{
    // One table-dominated shape (a big network, few requests) and one
    // loop-dominated shape (a tiny network under a deep-overload
    // burst, thousands of queue/dispatch events per table entry).
    std::vector<Subject> out;
    {
        Subject s;
        s.name = "serving_vgg16_poisson";
        s.spec.streams = {serving::StreamSpec{"vgg16", 1.0, 0}};
        s.spec.arrivals.kind = serving::ArrivalKind::Poisson;
        s.spec.arrivals.ratePerS = 200.0;
        s.spec.arrivals.seed = 7;
        s.spec.durationS = 0.5;
        s.spec.replicas = 2;
        s.spec.batch.maxBatch = 4;
        s.spec.batch.timeoutS = 2e-3;
        out.push_back(std::move(s));
    }
    {
        Subject s;
        s.name = "serving_lenet5_bursty";
        s.spec.streams = {serving::StreamSpec{"lenet5", 1.0, 0}};
        s.spec.arrivals.kind = serving::ArrivalKind::Bursty;
        s.spec.arrivals.ratePerS = 20000.0;
        s.spec.arrivals.seed = 7;
        s.spec.durationS = 0.5;
        s.spec.replicas = 2;
        s.spec.batch.maxBatch = 8;
        s.spec.batch.timeoutS = 1e-3;
        out.push_back(std::move(s));
    }
    return out;
}

double
timeOnce(const Subject &subject, bool fullServing)
{
    const Clock::time_point t0 = Clock::now();
    if (fullServing) {
        const serving::ServingReport rep =
            serving::simulate(subject.spec);
        inca_assert(rep.completed == rep.offered,
                    "simulation dropped requests");
    } else {
        // The same cost table simulate() precomputes, nothing else.
        const serving::BatchCostModel model(subject.spec.inca,
                                            subject.spec.shard);
        const nn::NetworkDesc net =
            nn::byName(subject.spec.streams[0].network);
        double latency = 0.0;
        for (int b = 1; b <= subject.spec.batch.maxBatch; ++b)
            latency += model.cost(net, b).latencyS;
        inca_assert(latency > 0.0, "cost model produced nothing");
    }
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    t0)
        .count();
}

void
runServingBench()
{
    for (const Subject &subject : subjects()) {
        std::map<std::string, bench::BenchRun> runs;
        for (const char *isa : {"scalar", "serving"}) {
            bench::BenchRun &run = runs[isa];
            run.name = subject.name;
            run.isa = isa;
            run.warmup = kWarmup;
            run.trim = kTrim;
        }
        for (int rep = 0; rep < kWarmup + kReps; ++rep) {
            for (const char *isa : {"scalar", "serving"}) {
                const double ns =
                    timeOnce(subject,
                             std::string(isa) == "serving");
                if (rep < kWarmup)
                    continue;
                runs[isa].samplesNs.push_back(ns);
                runs[isa].timestampsUs.push_back(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   gEpoch)
                        .count());
            }
        }
        double scalarNs = 0.0;
        for (const char *isa : {"scalar", "serving"}) {
            bench::BenchRun &run = runs[isa];
            const double mean =
                bench::trimmedMean(run.samplesNs, kTrim);
            std::printf("  %-28s %-8s %12.3f us\n",
                        run.name.c_str(), run.isa.c_str(),
                        mean / 1e3);
            if (std::string(isa) == "scalar")
                scalarNs = mean;
            else
                bench::JsonReport::instance().addPoint(
                    "serving_cost_vs_model", subject.name,
                    scalarNs / mean);
            bench::JsonReport::instance().addBenchmark(
                std::move(run));
        }
    }
}

} // namespace
} // namespace inca

int
main(int argc, char **argv)
{
    inca::checkEnvironment();
    const std::string jsonPath =
        inca::bench::extractJsonPath(argc, argv);
    std::printf("=== serving-simulator overhead (warmup %d, reps %d, "
                "trim %d, cache off) ===\n",
                inca::kWarmup, inca::kReps, inca::kTrim);
    inca::setCacheEnabled(false);
    inca::runServingBench();
    if (!jsonPath.empty())
        inca::bench::JsonReport::instance().write(jsonPath);
    return 0;
}
