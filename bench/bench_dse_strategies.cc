/**
 * @file
 * Ablation (beyond the paper's figures): how the three exploration
 * strategies spend a fixed evaluation budget on the same design
 * space. Grid scans the cross product in order, random samples it
 * without replacement, and annealing spends its budget walking the
 * neighbor graph toward the frontier. The report measures candidates
 * evaluated, engine runs actually paid for, frontier size, and the
 * best (energy, EDP) point each strategy found -- the
 * quality-per-evaluation trade the explore driver's --strategy flag
 * exposes.
 */

#include "bench_common.hh"

#include <string>
#include <vector>

#include "common/table.hh"
#include "common/units.hh"
#include "dse/explorer.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

dse::SearchSpace
space()
{
    dse::SearchSpace s;
    s.axis("plane", {8, 16, 32, 64});
    s.axis("adc_bits", {3, 4, 6, 8});
    s.axis("buffer_kib", {32, 64, 128});
    return s;
}

void
report()
{
    bench::banner(
        "Ablation: exploration strategies (ResNet18, 24-candidate "
        "budget over a 48-point space)");

    TextTable t({"strategy", "evaluated", "scored", "frontier",
                 "best E/batch", "best EDP"});
    for (const dse::StrategyKind kind :
         {dse::StrategyKind::Grid, dse::StrategyKind::Random,
          dse::StrategyKind::Anneal}) {
        dse::ExploreOptions opt;
        opt.network = "resnet18";
        opt.strategy = kind;
        opt.seed = 7;
        opt.budget = 24;
        opt.objectives = {dse::Objective::Energy,
                          dse::Objective::Edp};
        dse::Explorer explorer(space(), opt);
        dse::ExploreResult result;
        {
            sim::ScopedPhaseTimer timer(
                std::string("explore ") +
                dse::strategyKindName(kind));
            result = explorer.run();
        }
        double bestEnergy = 0.0, bestEdp = 0.0;
        for (const auto &e : result.frontier) {
            if (bestEnergy == 0.0 || e.energyJ < bestEnergy)
                bestEnergy = e.energyJ;
            const double edp = e.energyJ * e.latencyS;
            if (bestEdp == 0.0 || edp < bestEdp)
                bestEdp = edp;
        }
        t.addRow({dse::strategyKindName(kind),
                  std::to_string(result.evaluations.size()),
                  std::to_string(result.scored),
                  std::to_string(result.frontier.size()),
                  formatSi(bestEnergy, "J"),
                  formatSi(bestEdp, "Js")});
        auto &report = bench::JsonReport::instance();
        const std::string name = dse::strategyKindName(kind);
        report.addPoint("dse.best_energy_j", name, bestEnergy);
        report.addPoint("dse.best_edp_js", name, bestEdp);
        report.addPoint("dse.frontier_size", name,
                        double(result.frontier.size()));
        report.addPoint("dse.scored", name, double(result.scored));
    }
    t.print();
    std::printf("(the adaptive strategies trade coverage for focus: "
                "under a budget smaller than the space, annealing "
                "concentrates its engine runs near the frontier "
                "while grid spends them in axis order)\n");
    sim::printPhaseTimes();
}

} // namespace

INCA_BENCH_MAIN(report)
