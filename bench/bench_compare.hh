/**
 * @file
 * Perf-regression gate over two BENCH_*.json files.
 *
 * compareBench() loads a committed baseline and a freshly measured
 * file (both "inca.bench.v1", see bench_json.hh), matches benchmark
 * entries by (name, isa), and fails when any current trimmed mean is
 * more than `threshold` slower than its baseline. Two knobs make the
 * gate usable in CI rather than merely strict:
 *
 *  - normalize: absolute nanoseconds differ between the machine that
 *    committed the baseline and the runner re-measuring it. Naming a
 *    calibration benchmark (the scalar GEMM) divides every entry by
 *    that entry's own file's calibration time, so the gate compares
 *    RELATIVE shape -- "is avx2 still ~Nx the scalar reference" --
 *    which survives a machine swap.
 *  - missing entries are notes, not failures, unless requireAll: the
 *    runner may lack AVX-512 the baseline machine had. A baseline
 *    entry that exists in current is always compared.
 *
 * The parser underneath is a deliberately small recursive-descent
 * JSON reader (objects, arrays, strings, numbers, bools, null; no
 * \uXXXX escapes) -- enough for files this repo emits itself, and
 * unit-tested against synthetic fixtures in test_bench_harness.
 */

#ifndef INCA_BENCH_BENCH_COMPARE_HH
#define INCA_BENCH_BENCH_COMPARE_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace inca {
namespace bench {

/** Minimal JSON document node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member by key, or nullptr. */
    const JsonValue *
    get(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

namespace detail {

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (err_.empty())
            err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue &out, JsonValue::Kind kind,
            bool b)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out.kind = kind;
        out.boolean = b;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': c = '"'; break;
                  case '\\': c = '\\'; break;
                  case '/': c = '/'; break;
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  default:
                    return fail("unsupported escape");
                }
            }
            out.push_back(c);
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null", out, JsonValue::Kind::Null, false);
        if (c == 't')
            return literal("true", out, JsonValue::Kind::Bool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::Kind::Bool,
                           false);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return string(out.string);
        }
        if (c == '{') {
            out.kind = JsonValue::Kind::Object;
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue member;
                if (!value(member))
                    return false;
                out.object.emplace_back(std::move(key),
                                        std::move(member));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            out.kind = JsonValue::Kind::Array;
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                JsonValue elem;
                if (!value(elem))
                    return false;
                out.array.push_back(std::move(elem));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        // Number.
        const std::size_t start = pos_;
        if (c == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected value");
        char *end = nullptr;
        const std::string tok = text_.substr(start, pos_ - start);
        out.number = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        return true;
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse @p text; on failure returns Null and sets @p err. */
inline JsonValue
parseJson(const std::string &text, std::string &err)
{
    err.clear();
    JsonValue root;
    detail::JsonParser parser(text, err);
    if (!parser.parse(root))
        return JsonValue{};
    return root;
}

struct CompareOptions
{
    /** Fail when current/baseline exceeds 1 + threshold. */
    double threshold = 0.15;
    /** Calibration benchmark name; empty = compare raw nanoseconds. */
    std::string normalize;
    /**
     * Compare each vector entry as a ratio to the SAME file's scalar
     * entry of the SAME benchmark (and skip the scalar entries
     * themselves). Both variants run seconds apart in one process,
     * so machine-wide throughput drift -- noisy neighbours, thermal
     * state, a different CI runner -- cancels exactly; what is gated
     * is the SIMD speedup shape, which is what the kernel overhaul
     * actually claims. Benchmarks with no scalar twin are not gated.
     */
    bool relativeToScalar = false;
    /** Treat baseline entries missing from current as failures. */
    bool requireAll = false;
};

struct CompareResult
{
    bool ok = false;
    std::string error; ///< parse/schema problem ("" when none)
    std::vector<std::string> regressions;
    std::vector<std::string> notes; ///< missing entries, improvements
};

namespace detail {

struct BenchEntry
{
    std::string isa;
    double meanNs = 0.0;
};

/** (name|isa) -> trimmed mean, plus the calibration divisor. */
inline bool
loadEntries(const std::string &json, const CompareOptions &opts,
            std::map<std::string, double> &entries, std::string &err)
{
    const std::string &normalize = opts.normalize;
    const JsonValue root = parseJson(json, err);
    if (!err.empty())
        return false;
    const JsonValue *schema = root.get("schema");
    if (schema == nullptr ||
        schema->kind != JsonValue::Kind::String) {
        err = "missing \"schema\"";
        return false;
    }
    if (schema->string != "inca.bench.v1") {
        err = "unsupported schema '" + schema->string + "'";
        return false;
    }
    const JsonValue *benches = root.get("benchmarks");
    if (benches == nullptr ||
        benches->kind != JsonValue::Kind::Array) {
        err = "missing \"benchmarks\" array";
        return false;
    }
    double calibration = 0.0;
    for (const JsonValue &b : benches->array) {
        const JsonValue *name = b.get("name");
        const JsonValue *isa = b.get("isa");
        const JsonValue *mean = b.get("trimmed_mean_ns");
        if (name == nullptr || isa == nullptr || mean == nullptr ||
            mean->kind != JsonValue::Kind::Number) {
            err = "benchmark entry missing name/isa/trimmed_mean_ns";
            return false;
        }
        entries[name->string + "|" + isa->string] = mean->number;
        // Calibration divisor: the named benchmark's scalar entry
        // (any entry as fallback, first wins).
        if (!normalize.empty() && name->string == normalize &&
            (calibration == 0.0 || isa->string == "scalar"))
            calibration = mean->number;
    }
    if (!normalize.empty()) {
        if (calibration <= 0.0) {
            err = "calibration benchmark '" + normalize +
                  "' not found (or non-positive)";
            return false;
        }
        for (auto &[key, v] : entries)
            v /= calibration;
    }
    if (opts.relativeToScalar) {
        std::map<std::string, double> relative;
        for (const auto &[key, v] : entries) {
            const std::size_t bar = key.rfind('|');
            const std::string isa = key.substr(bar + 1);
            if (isa == "scalar")
                continue; // the denominator, not a gated entry
            const auto scalar =
                entries.find(key.substr(0, bar) + "|scalar");
            if (scalar == entries.end() || scalar->second <= 0.0)
                continue; // no twin to cancel noise against
            relative[key] = v / scalar->second;
        }
        entries = std::move(relative);
    }
    return true;
}

} // namespace detail

/**
 * Compare two bench JSON documents (file CONTENTS, not paths).
 * result.ok is false on any parse error, regression, or -- with
 * requireAll -- missing entry.
 */
inline CompareResult
compareBench(const std::string &baselineJson,
             const std::string &currentJson,
             const CompareOptions &opts)
{
    CompareResult res;
    std::map<std::string, double> base, cur;
    if (!detail::loadEntries(baselineJson, opts, base, res.error)) {
        res.error = "baseline: " + res.error;
        return res;
    }
    if (!detail::loadEntries(currentJson, opts, cur, res.error)) {
        res.error = "current: " + res.error;
        return res;
    }

    bool missing = false;
    for (const auto &[key, baseVal] : base) {
        const auto it = cur.find(key);
        if (it == cur.end()) {
            res.notes.push_back("missing from current: " + key);
            missing = true;
            continue;
        }
        const double ratio =
            baseVal <= 0.0 ? 1.0 : it->second / baseVal;
        char line[256];
        std::snprintf(line, sizeof(line), "%s: %.3fx baseline",
                      key.c_str(), ratio);
        if (ratio > 1.0 + opts.threshold)
            res.regressions.push_back(line);
        else if (ratio < 1.0 - opts.threshold)
            res.notes.push_back(std::string(line) + " (improved)");
    }
    for (const auto &[key, v] : cur) {
        (void)v;
        if (base.find(key) == base.end())
            res.notes.push_back("new benchmark (no baseline): " +
                                key);
    }
    res.ok = res.regressions.empty() &&
             !(opts.requireAll && missing);
    return res;
}

} // namespace bench
} // namespace inca

#endif // INCA_BENCH_BENCH_COMPARE_HH
