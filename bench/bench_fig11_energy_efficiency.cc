/**
 * @file
 * Figure 11: energy-efficiency gain of INCA over the WS baseline for
 * (a) inference and (b) training, batch 64, ImageNet shapes. The
 * paper reports 8.0-20.6x in inference and 103-260x in training for
 * the heavy networks, and one to two further orders of magnitude for
 * the light models.
 */

#include "bench_common.hh"

#include "common/table.hh"
#include "common/units.hh"
#include "nn/model_zoo.hh"
#include "sim/plot.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 11: energy efficiency, INCA vs. WS "
                  "baseline (batch 64)");
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());

    const double paperInf[] = {20.6, 15.9, 8.7, 8.0, 80.0, 83.0};
    const double paperTrn[] = {260, 202, 103, 152, 3873, 2790};

    TextTable t({"network", "INCA E/batch", "WS E/batch",
                 "inference gain", "(paper)", "training gain",
                 "(paper)"});
    const auto suite = nn::evaluationSuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto inf = sim::compare(inca, base, suite[i], 64,
                                      arch::Phase::Inference);
        const auto trn = sim::compare(inca, base, suite[i], 64,
                                      arch::Phase::Training);
        t.addRow({suite[i].name,
                  formatSi(inf.inca.energy(), "J"),
                  formatSi(inf.baseline.energy(), "J"),
                  TextTable::ratio(inf.energyEfficiencyGain()),
                  TextTable::ratio(paperInf[i]),
                  TextTable::ratio(trn.energyEfficiencyGain()),
                  TextTable::ratio(paperTrn[i])});
    }
    t.print();

    std::vector<sim::Bar> infBars, trnBars;
    for (const auto &net : suite) {
        infBars.push_back(
            {net.name, sim::compare(inca, base, net, 64,
                                    arch::Phase::Inference)
                           .energyEfficiencyGain()});
        trnBars.push_back(
            {net.name, sim::compare(inca, base, net, 64,
                                    arch::Phase::Training)
                           .energyEfficiencyGain()});
    }
    for (const auto &bar : infBars)
        bench::JsonReport::instance().addPoint(
            "inference_energy_gain", bar.label, bar.value);
    for (const auto &bar : trnBars)
        bench::JsonReport::instance().addPoint(
            "training_energy_gain", bar.label, bar.value);
    sim::BarOptions bopt;
    bopt.logScale = true;
    bopt.unit = "x";
    std::printf("\n(a) inference energy-efficiency gain:\n%s",
                sim::barChart(infBars, bopt).c_str());
    std::printf("\n(b) training energy-efficiency gain:\n%s",
                sim::barChart(trnBars, bopt).c_str());
    std::printf("shape check: INCA wins everywhere; training gains "
                "exceed inference gains (3D batch parallelism); light "
                "models gain another order of magnitude (WS "
                "utilization collapse).\n");
}

void
BM_InferenceComparison(benchmark::State &state)
{
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::vgg16();
    for (auto _ : state) {
        const auto c = sim::compare(inca, base, net, 64,
                                    arch::Phase::Inference);
        benchmark::DoNotOptimize(c.energyEfficiencyGain());
    }
}
BENCHMARK(BM_InferenceComparison);

void
BM_TrainingComparison(benchmark::State &state)
{
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::vgg16();
    for (auto _ : state) {
        const auto c = sim::compare(inca, base, net, 64,
                                    arch::Phase::Training);
        benchmark::DoNotOptimize(c.energyEfficiencyGain());
    }
}
BENCHMARK(BM_TrainingComparison);

} // namespace

INCA_BENCH_MAIN(report)
