/**
 * @file
 * Table VI: training accuracy under RRAM nonideality modelled as
 * zero-centered Gaussian noise (after Yu [65]) applied to the
 * RRAM-resident operand -- weights for the WS baseline, activations
 * for INCA -- with sigma swept over the paper's 0.005..0.05 range.
 *
 * Substitution (see DESIGN.md): the paper fine-tunes a pretrained
 * ImageNet ResNet18 for 10 epochs; we train a small ResNet-style CNN
 * on the synthetic task. The mechanism is preserved: WS reprograms
 * its weight cells at every update, so programming noise accumulates
 * as a random walk over the run, while IS activation noise is
 * transient and never reaches the digital classifier head. Paper
 * result: weights 82.13 -> 15.17 %, activations 89.21 -> 85.59 %.
 */

#include "bench_common.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"

namespace {

using namespace inca;
using namespace inca::nn;

DatasetPair
task()
{
    SyntheticSpec spec;
    spec.numClasses = 6;
    spec.channels = 1;
    spec.size = 12;
    spec.trainPerClass = 25;
    spec.testPerClass = 15;
    spec.seed = 9;
    spec.pixelNoise = 0.25;
    return makeSynthetic(spec);
}

double
trainWithNoise(const DatasetPair &data, NoiseTarget target,
               double sigma)
{
    Rng rng(33);
    auto net = makeSmallResNet(1, 12, 6, 8, rng);
    TrainConfig cfg;
    cfg.epochs = 12;
    cfg.batchSize = 10;
    cfg.lr = 0.02f;
    cfg.noise = NoiseSpec{target, sigma};
    return train(*net, data, cfg).finalTestAccuracy;
}

void
report()
{
    setQuiet(true);
    bench::banner("Table VI: training accuracy vs. noise strength "
                  "(synthetic substitution)");
    auto data = task();
    const double clean =
        trainWithNoise(data, NoiseTarget::None, 0.0);
    std::printf("noise-free accuracy: %.1f %%\n", 100.0 * clean);

    const double sigmas[] = {0.005, 0.01, 0.02, 0.03, 0.05};
    const double paperWt[] = {82.13, 77.03, 58.36, 48.57, 15.17};
    const double paperAct[] = {89.21, 89.02, 88.50, 87.54, 85.59};

    TextTable t({"sigma", "weights noisy (WS)", "(paper)",
                 "activations noisy (INCA)", "(paper)"});
    for (size_t i = 0; i < 5; ++i) {
        const double accW =
            trainWithNoise(data, NoiseTarget::Weights, sigmas[i]);
        const double accA =
            trainWithNoise(data, NoiseTarget::Activations, sigmas[i]);
        t.addRow({TextTable::num(sigmas[i], 3),
                  TextTable::num(100.0 * accW, 1) + " %",
                  TextTable::num(paperWt[i], 2) + " %",
                  TextTable::num(100.0 * accA, 1) + " %",
                  TextTable::num(paperAct[i], 2) + " %"});
    }
    t.print();
    std::printf("shape check: weight-side noise (the WS dataflow) "
                "degrades training towards chance while "
                "activation-side noise (INCA) stays near the "
                "noise-free accuracy.\n");
}

void
BM_NoisyTrainingEpoch(benchmark::State &state)
{
    setQuiet(true);
    auto data = task();
    for (auto _ : state) {
        Rng rng(33);
        auto net = makeSmallResNet(1, 12, 6, 8, rng);
        TrainConfig cfg;
        cfg.epochs = 1;
        cfg.batchSize = 10;
        cfg.lr = 0.02f;
        cfg.noise = NoiseSpec{NoiseTarget::Activations, 0.02};
        const auto r = train(*net, data, cfg);
        benchmark::DoNotOptimize(r.finalTestAccuracy);
    }
}
BENCHMARK(BM_NoisyTrainingEpoch);

} // namespace

INCA_BENCH_MAIN(report)
