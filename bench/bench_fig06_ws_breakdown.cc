/**
 * @file
 * Figure 6: energy breakdown of the WS baseline executing VGG16 and
 * ResNet18 with CIFAR10-shaped inputs, plus the WS-vs-INCA
 * memory-system contrast the figure motivates (Limitation 1).
 *
 * Note on fidelity: the paper's NeuroSim-based accounting attributes
 * the largest share to DRAM + buffers; our physically re-derived
 * model attributes relatively more to the ADCs and leakage. The
 * robust reproduction target is the *contrast*: the WS chip's
 * memory-system energy is many times INCA's for the same workload
 * (see EXPERIMENTS.md).
 */

#include "bench_common.hh"

#include "baseline/engine.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 6: WS energy breakdown (CIFAR10 shapes, "
                  "batch 64)");
    baseline::BaselineEngine base(arch::paperBaseline());
    core::IncaEngine inca(arch::paperInca());
    const auto input = nn::cifarInput();

    for (const auto &net :
         {nn::vgg16(input), nn::resnet18(input)}) {
        const auto run = base.inference(net, 64);
        const auto pct = sim::energyBreakdownPct(run);
        TextTable t({"component", "energy", "share"});
        const auto abs = sim::energyBreakdown(run);
        for (const char *key : {"dram", "buffer", "adc", "array",
                                "dac", "digital", "static"}) {
            t.addRow({key, formatSi(abs.at(key), "J"),
                      TextTable::num(pct.at(key), 1) + " %"});
        }
        std::printf("\nWS baseline, %s:\n", net.name.c_str());
        t.print();

        const auto isRun = inca.inference(net, 64);
        const auto isAbs = sim::energyBreakdown(isRun);
        const double wsMem = abs.at("dram") + abs.at("buffer");
        const double isMem = isAbs.at("dram") + isAbs.at("buffer");
        std::printf("memory-system (DRAM+buffer) energy: WS %s vs "
                    "INCA %s -> %.1fx contrast\n",
                    formatSi(wsMem, "J").c_str(),
                    formatSi(isMem, "J").c_str(), wsMem / isMem);
    }
}

void
BM_WsCifarInference(benchmark::State &state)
{
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::vgg16(nn::cifarInput());
    for (auto _ : state) {
        auto run = base.inference(net, 64);
        benchmark::DoNotOptimize(run.layers.size());
    }
}
BENCHMARK(BM_WsCifarInference);

} // namespace

INCA_BENCH_MAIN(report)
