/**
 * @file
 * Machine-readable bench output.
 *
 * Every bench binary accepts `--json <path>` (or `--json=<path>`):
 * after the report runs, the named series of (label, value) points it
 * registered via JsonReport::addPoint, the full process metrics
 * registry, and a small provenance block are written to the path as
 * one JSON object. The flag is stripped from argv before
 * google-benchmark parses it, and nothing extra is printed, so the
 * human-readable stdout is unchanged whether or not JSON is requested.
 */

#ifndef INCA_BENCH_BENCH_JSON_HH
#define INCA_BENCH_BENCH_JSON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"

namespace inca {
namespace bench {

/** Schema tag stamped into every bench JSON file; bump on layout
 * changes so downstream tooling (bench_compare, the CI perf gate)
 * can refuse files it does not understand. */
inline constexpr const char *kBenchSchema = "inca.bench.v1";

/**
 * One measured benchmark: raw per-repetition samples plus the
 * summary statistic the regression gate compares. Samples are kept
 * raw precisely so a later reader can recompute (and a test can
 * cross-check) the trimmed mean.
 */
struct BenchRun
{
    std::string name;  ///< e.g. "gemm_m128_k128_n128"
    std::string isa;   ///< kernel ISA the run executed ("scalar"...)
    std::string unit = "ns";
    int warmup = 0; ///< repetitions discarded before sampling
    int trim = 0;   ///< samples dropped from EACH end for the mean
    std::vector<double> samplesNs;      ///< one per kept repetition
    std::vector<std::int64_t> timestampsUs; ///< sample end times, monotone
    double trimmedMeanNs = 0.0;
};

/**
 * Mean of @p samples after dropping the @p trim smallest and @p trim
 * largest values -- the noise-robust statistic BENCH_*.json records
 * and the perf gate compares. Requires samples.size() > 2 * trim.
 */
inline double
trimmedMean(std::vector<double> samples, int trim)
{
    inca_assert(trim >= 0 &&
                    samples.size() > std::size_t(2 * trim),
                "trimmedMean: %zu samples cannot lose %d from each end",
                samples.size(), trim);
    std::sort(samples.begin(), samples.end());
    double sum = 0.0;
    const std::size_t n = samples.size() - std::size_t(trim);
    for (std::size_t i = std::size_t(trim); i < n; ++i)
        sum += samples[i];
    return sum / double(n - std::size_t(trim));
}

/** Collects named series of (label, value) points for --json output. */
class JsonReport
{
  public:
    /** Process-wide collector used by the INCA_BENCH_MAIN harness. */
    static JsonReport &
    instance()
    {
        static JsonReport *report = new JsonReport;
        return *report;
    }

    /** Append one point to the series named @p series. */
    void
    addPoint(const std::string &series, const std::string &label,
             double value)
    {
        for (auto &s : series_) {
            if (s.name == series) {
                s.points.emplace_back(label, value);
                return;
            }
        }
        series_.push_back({series, {{label, value}}});
    }

    /** Record one measured benchmark (computes the trimmed mean). */
    void
    addBenchmark(BenchRun run)
    {
        run.trimmedMeanNs = trimmedMean(run.samplesNs, run.trim);
        benchmarks_.push_back(std::move(run));
    }

    /** Serialize series + benchmarks + metrics + provenance. */
    std::string
    toJson() const
    {
        std::string out = "{\n  \"schema\": \"";
        out += kBenchSchema;
        out += "\",\n  \"series\": {";
        bool firstSeries = true;
        for (const auto &s : series_) {
            if (!firstSeries)
                out += ",";
            firstSeries = false;
            out += "\n    \"" + escape(s.name) + "\": [";
            bool firstPoint = true;
            for (const auto &[label, value] : s.points) {
                if (!firstPoint)
                    out += ",";
                firstPoint = false;
                out += "\n      {\"label\": \"" + escape(label) +
                       "\", \"value\": " + num(value) + "}";
            }
            out += "\n    ]";
        }
        out += "\n  },\n  \"benchmarks\": [";
        bool firstBench = true;
        for (const auto &b : benchmarks_) {
            if (!firstBench)
                out += ",";
            firstBench = false;
            out += "\n    {\"name\": \"" + escape(b.name) +
                   "\", \"isa\": \"" + escape(b.isa) +
                   "\", \"unit\": \"" + escape(b.unit) +
                   "\", \"warmup\": " + std::to_string(b.warmup) +
                   ", \"trim\": " + std::to_string(b.trim) +
                   ",\n     \"samples_ns\": [";
            bool firstVal = true;
            for (double v : b.samplesNs) {
                if (!firstVal)
                    out += ", ";
                firstVal = false;
                out += num(v);
            }
            out += "],\n     \"timestamps_us\": [";
            firstVal = true;
            for (std::int64_t t : b.timestampsUs) {
                if (!firstVal)
                    out += ", ";
                firstVal = false;
                out += std::to_string(t);
            }
            out += "],\n     \"trimmed_mean_ns\": " +
                   num(b.trimmedMeanNs) + "}";
        }
        out += "\n  ],\n";
        out += "  \"provenance\": {\"threads\": " +
               std::to_string(ThreadPool::globalThreadCount()) +
               ", \"cache\": " +
               (cacheEnabled() ? "true" : "false") + ", \"env\": {" +
               envEntries() + "}},\n";
        out += "  \"metrics\": " + metrics::toJson() + "\n}\n";
        return out;
    }

    /** Write toJson() to @p path; fatal() when the file cannot open. */
    void
    write(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out)
            fatal("cannot write '%s'", path.c_str());
        out << toJson();
    }

  private:
    struct Series
    {
        std::string name;
        std::vector<std::pair<std::string, double>> points;
    };

    static std::string
    num(double v)
    {
        // %.17g round-trips any double exactly, so a reader can
        // recompute the trimmed mean from samples_ns bit-for-bit.
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return buf;
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    static std::string
    envEntries()
    {
        std::string out;
        bool first = true;
        for (const char *name :
             {"INCA_TRACE", "INCA_METRICS", "INCA_NUM_THREADS",
              "INCA_CACHE", "INCA_KERNEL_ISA"}) {
            if (!first)
                out += ", ";
            first = false;
            const char *v = std::getenv(name);
            out += '"';
            out += name;
            out += "\": ";
            if (v) {
                out += '"';
                out += escape(v);
                out += '"';
            } else {
                out += "null";
            }
        }
        return out;
    }

    std::vector<Series> series_;
    std::vector<BenchRun> benchmarks_;
};

/**
 * Remove `--json <path>` / `--json=<path>` from argv (so
 * benchmark::Initialize never sees it) and return the path, or ""
 * when the flag is absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return path;
}

} // namespace bench
} // namespace inca

#endif // INCA_BENCH_BENCH_JSON_HH
