/**
 * @file
 * Machine-readable bench output.
 *
 * Every bench binary accepts `--json <path>` (or `--json=<path>`):
 * after the report runs, the named series of (label, value) points it
 * registered via JsonReport::addPoint, the full process metrics
 * registry, and a small provenance block are written to the path as
 * one JSON object. The flag is stripped from argv before
 * google-benchmark parses it, and nothing extra is printed, so the
 * human-readable stdout is unchanged whether or not JSON is requested.
 */

#ifndef INCA_BENCH_BENCH_JSON_HH
#define INCA_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cache.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/thread_pool.hh"

namespace inca {
namespace bench {

/** Collects named series of (label, value) points for --json output. */
class JsonReport
{
  public:
    /** Process-wide collector used by the INCA_BENCH_MAIN harness. */
    static JsonReport &
    instance()
    {
        static JsonReport *report = new JsonReport;
        return *report;
    }

    /** Append one point to the series named @p series. */
    void
    addPoint(const std::string &series, const std::string &label,
             double value)
    {
        for (auto &s : series_) {
            if (s.name == series) {
                s.points.emplace_back(label, value);
                return;
            }
        }
        series_.push_back({series, {{label, value}}});
    }

    /** Serialize series + metrics + provenance as one JSON object. */
    std::string
    toJson() const
    {
        std::string out = "{\n  \"series\": {";
        bool firstSeries = true;
        for (const auto &s : series_) {
            if (!firstSeries)
                out += ",";
            firstSeries = false;
            out += "\n    \"" + escape(s.name) + "\": [";
            bool firstPoint = true;
            for (const auto &[label, value] : s.points) {
                if (!firstPoint)
                    out += ",";
                firstPoint = false;
                out += "\n      {\"label\": \"" + escape(label) +
                       "\", \"value\": " + num(value) + "}";
            }
            out += "\n    ]";
        }
        out += "\n  },\n";
        out += "  \"provenance\": {\"threads\": " +
               std::to_string(ThreadPool::globalThreadCount()) +
               ", \"cache\": " +
               (cacheEnabled() ? "true" : "false") + ", \"env\": {" +
               envEntries() + "}},\n";
        out += "  \"metrics\": " + metrics::toJson() + "\n}\n";
        return out;
    }

    /** Write toJson() to @p path; fatal() when the file cannot open. */
    void
    write(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out)
            fatal("cannot write '%s'", path.c_str());
        out << toJson();
    }

  private:
    struct Series
    {
        std::string name;
        std::vector<std::pair<std::string, double>> points;
    };

    static std::string
    num(double v)
    {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return buf;
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    static std::string
    envEntries()
    {
        std::string out;
        bool first = true;
        for (const char *name : {"INCA_TRACE", "INCA_METRICS",
                                 "INCA_NUM_THREADS", "INCA_CACHE"}) {
            if (!first)
                out += ", ";
            first = false;
            const char *v = std::getenv(name);
            out += '"';
            out += name;
            out += "\": ";
            if (v) {
                out += '"';
                out += escape(v);
                out += '"';
            } else {
                out += "null";
            }
        }
        return out;
    }

    std::vector<Series> series_;
};

/**
 * Remove `--json <path>` / `--json=<path>` from argv (so
 * benchmark::Initialize never sees it) and return the path, or ""
 * when the flag is absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            path = argv[++i];
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return path;
}

} // namespace bench
} // namespace inca

#endif // INCA_BENCH_BENCH_JSON_HH
