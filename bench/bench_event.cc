/**
 * @file
 * Event-backend scheduling overhead vs the analytic walk.
 *
 * Both backends consume the same lowered ir::Program; the analytic
 * walk folds it span by span while the event backend runs a full
 * dependency-driven schedule. This bench pins the price of that
 * schedule: each subject program is lowered once (lowering is engine
 * arithmetic, not the subject) and then timed through ir::analyticWalk
 * (isa "scalar") and event::execute (isa "event"), interleaved at
 * repetition granularity so host drift cancels in the ratio the gate
 * compares. The committed baseline (bench/baselines/BENCH_event.json)
 * pins the relative cost; bench_compare --relative-to-scalar fails a
 * confirmed >15% regression of it.
 *
 *   bench_event --json BENCH_event.json
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "bench_json.hh"
#include "common/cache.hh"
#include "common/env.hh"
#include "event/event.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 9;
constexpr int kTrim = 2;

using Clock = std::chrono::steady_clock;
const Clock::time_point gEpoch = Clock::now();

struct Subject
{
    std::string name;
    ir::Program program;
};

std::vector<Subject>
subjects()
{
    // One deep inference stream (vgg16: long serial conv chain) and
    // one training stream (resnet18: backward + update groups triple
    // the instruction count) -- the two shapes the event queue sees.
    std::vector<Subject> out;
    out.push_back({"timeline_vgg16_inference",
                   ir::lowerInca(arch::paperInca(), nn::vgg16(),
                                 arch::Phase::Inference, 64)});
    out.push_back({"timeline_resnet18_training",
                   ir::lowerInca(arch::paperInca(), nn::resnet18(),
                                 arch::Phase::Training, 64)});
    return out;
}

double
timeOnce(const ir::Program &p, bool eventBackend)
{
    const Clock::time_point t0 = Clock::now();
    const arch::RunCost run = eventBackend
                                  ? event::execute(p).run
                                  : ir::analyticWalk(p);
    inca_assert(run.latency > 0.0, "backend produced nothing");
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    t0)
        .count();
}

void
runEventBench()
{
    for (const Subject &subject : subjects()) {
        std::map<std::string, bench::BenchRun> runs;
        for (const char *isa : {"scalar", "event"}) {
            bench::BenchRun &run = runs[isa];
            run.name = subject.name;
            run.isa = isa;
            run.warmup = kWarmup;
            run.trim = kTrim;
        }
        for (int rep = 0; rep < kWarmup + kReps; ++rep) {
            for (const char *isa : {"scalar", "event"}) {
                const double ns =
                    timeOnce(subject.program,
                             std::string(isa) == "event");
                if (rep < kWarmup)
                    continue;
                runs[isa].samplesNs.push_back(ns);
                runs[isa].timestampsUs.push_back(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   gEpoch)
                        .count());
            }
        }
        double scalarNs = 0.0;
        for (const char *isa : {"scalar", "event"}) {
            bench::BenchRun &run = runs[isa];
            const double mean =
                bench::trimmedMean(run.samplesNs, kTrim);
            std::printf("  %-28s %-7s %12.3f us\n",
                        run.name.c_str(), run.isa.c_str(),
                        mean / 1e3);
            if (std::string(isa) == "scalar")
                scalarNs = mean;
            else
                bench::JsonReport::instance().addPoint(
                    "event_speed_vs_analytic", subject.name,
                    scalarNs / mean);
            bench::JsonReport::instance().addBenchmark(
                std::move(run));
        }
    }
}

} // namespace
} // namespace inca

int
main(int argc, char **argv)
{
    inca::checkEnvironment();
    const std::string jsonPath =
        inca::bench::extractJsonPath(argc, argv);
    std::printf("=== event-backend scheduling overhead (warmup %d, "
                "reps %d, trim %d, cache off) ===\n",
                inca::kWarmup, inca::kReps, inca::kTrim);
    inca::setCacheEnabled(false);
    inca::runEventBench();
    if (!jsonPath.empty())
        inca::bench::JsonReport::instance().write(jsonPath);
    return 0;
}
