/**
 * @file
 * End-to-end fault-campaign wall-clock, scalar vs the widest ISA.
 *
 * The kernel microbenches (bench_kernels) prove the primitives got
 * faster; this bench proves the speed survives composition -- a full
 * Monte-Carlo reliability campaign (sampling, mitigation, accuracy
 * proxy, cost model) measured under kernels::setActive(scalar) and
 * under the widest available set. The EvalCache is disabled for the
 * duration: campaign points memoize by parameterization, and a cache
 * hit would time a map lookup instead of the simulation.
 *
 *   bench_campaign --json BENCH_campaign.json
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "common/cache.hh"
#include "common/env.hh"
#include "reliability/campaign.hh"
#include "tensor/kernels/kernels.hh"

namespace inca {
namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 9;
constexpr int kTrim = 2;

using Clock = std::chrono::steady_clock;
const Clock::time_point gEpoch = Clock::now();

reliability::CampaignOptions
benchOptions()
{
    reliability::CampaignOptions opt;
    opt.network = "lenet5";
    opt.trials = 6;
    opt.bers = {1e-4, 1e-3};
    opt.lifetimes = {1e5};
    opt.fault.seed = 42;
    return opt;
}

double
runOnce()
{
    const Clock::time_point t0 = Clock::now();
    const auto result = reliability::runCampaign(benchOptions());
    inca_assert(!result.curves.empty(), "campaign produced nothing");
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    t0)
        .count();
}

void
runCampaignBench()
{
    std::vector<kernels::Isa> isas = {kernels::Isa::Scalar};
    const auto avail = kernels::availableIsas();
    if (avail.back() != kernels::Isa::Scalar)
        isas.push_back(avail.back());

    // ISAs interleave at repetition granularity (scalar rep i, then
    // vector rep i): host throughput drift lands in both sample sets
    // equally, so the speedup ratio the gate compares is drift-free.
    std::map<kernels::Isa, bench::BenchRun> runs;
    for (kernels::Isa isa : isas) {
        bench::BenchRun &run = runs[isa];
        run.name = "fault_campaign_lenet5";
        run.isa = kernels::isaName(isa);
        run.warmup = kWarmup;
        run.trim = kTrim;
    }
    for (int rep = 0; rep < kWarmup + kReps; ++rep) {
        for (kernels::Isa isa : isas) {
            kernels::setActive(isa);
            const double ns = runOnce();
            if (rep < kWarmup)
                continue;
            runs[isa].samplesNs.push_back(ns);
            runs[isa].timestampsUs.push_back(
                std::chrono::duration_cast<
                    std::chrono::microseconds>(Clock::now() - gEpoch)
                    .count());
        }
    }
    double scalarNs = 0.0;
    for (kernels::Isa isa : isas) {
        bench::BenchRun &run = runs[isa];
        const double mean = bench::trimmedMean(run.samplesNs, kTrim);
        std::printf("  %-28s %-7s %12.3f ms\n", run.name.c_str(),
                    run.isa.c_str(), mean / 1e6);
        if (isa == kernels::Isa::Scalar)
            scalarNs = mean;
        else
            bench::JsonReport::instance().addPoint(
                "campaign_speedup_vs_scalar", run.isa,
                scalarNs / mean);
        bench::JsonReport::instance().addBenchmark(std::move(run));
    }
    kernels::resetActive();
}

} // namespace
} // namespace inca

int
main(int argc, char **argv)
{
    inca::checkEnvironment();
    const std::string jsonPath =
        inca::bench::extractJsonPath(argc, argv);
    std::printf("=== fault-campaign wall-clock (warmup %d, reps %d, "
                "trim %d, cache off) ===\n",
                inca::kWarmup, inca::kReps, inca::kTrim);
    inca::setCacheEnabled(false);
    inca::runCampaignBench();
    if (!jsonPath.empty())
        inca::bench::JsonReport::instance().write(jsonPath);
    return 0;
}
