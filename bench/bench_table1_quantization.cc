/**
 * @file
 * Table I (background, from [21]): accuracy drop when reducing the
 * activation bit depth under 8-bit weights, and the weight bit depth
 * under 8-bit activations. Substitution: the paper cites ImageNet
 * results from the quantization literature; we run the same sweep by
 * training our small CNN on the synthetic task and applying
 * post-training uniform quantization (see DESIGN.md). The
 * weight-vs-activation asymmetry of deep heavy-tailed ImageNet models
 * does not fully reproduce at this scale; the monotone degradation
 * with bit depth does, and EXPERIMENTS.md records the delta.
 */

#include "bench_common.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "nn/dataset.hh"
#include "nn/module.hh"
#include "nn/trainer.hh"

namespace {

using namespace inca;
using namespace inca::nn;

DatasetPair
task()
{
    SyntheticSpec spec;
    spec.numClasses = 6;
    spec.channels = 1;
    spec.size = 12;
    spec.trainPerClass = 25;
    spec.testPerClass = 15;
    spec.seed = 9;
    spec.pixelNoise = 0.25;
    return makeSynthetic(spec);
}

void
report()
{
    setQuiet(true);
    bench::banner("Table I: accuracy drop vs. weight / activation "
                  "bit depth (synthetic substitution)");
    auto data = task();
    Rng rng(33);
    auto net = makeSmallResNet(1, 12, 6, 8, rng);
    TrainConfig cfg;
    cfg.epochs = 12;
    cfg.batchSize = 10;
    cfg.lr = 0.02f;
    train(*net, data, cfg);
    const double fp = evaluate(*net, data.test);
    std::printf("float baseline accuracy: %.1f %%\n", 100.0 * fp);

    auto accAt = [&](int wBits, int aBits) {
        EvalOptions o;
        o.weightBits = wBits;
        o.actBits = aBits;
        return evaluate(*net, data.test, o);
    };

    const double paperAct[] = {-0.3, -0.4, -1.3, -3.5};
    const double paperWt[] = {-1.3, -1.1, -3.1, -11.4};

    TextTable t({"config", "accuracy", "drop vs. float",
                 "(paper drop, ImageNet)"});
    for (int i = 0; i < 4; ++i) {
        const int bits = 7 - i;
        const double acc = accAt(8, bits);
        char cfgName[32];
        std::snprintf(cfgName, sizeof(cfgName), "W8 / A%d", bits);
        t.addRow({cfgName, TextTable::num(100.0 * acc, 1) + " %",
                  TextTable::num(100.0 * (acc - fp), 1) + " %",
                  TextTable::num(paperAct[i], 1) + " %"});
    }
    t.addRule();
    for (int i = 0; i < 4; ++i) {
        const int bits = 7 - i;
        const double acc = accAt(bits, 8);
        char cfgName[32];
        std::snprintf(cfgName, sizeof(cfgName), "W%d / A8", bits);
        t.addRow({cfgName, TextTable::num(100.0 * acc, 1) + " %",
                  TextTable::num(100.0 * (acc - fp), 1) + " %",
                  TextTable::num(paperWt[i], 1) + " %"});
    }
    // Extend below the paper's range to expose the breakdown point.
    t.addRule();
    for (int bits : {3, 2}) {
        char a[32], b[32];
        std::snprintf(a, sizeof(a), "W8 / A%d", bits);
        std::snprintf(b, sizeof(b), "W%d / A8", bits);
        t.addRow({a, TextTable::num(100.0 * accAt(8, bits), 1) + " %",
                  "-", "-"});
        t.addRow({b, TextTable::num(100.0 * accAt(bits, 8), 1) + " %",
                  "-", "-"});
    }
    t.print();
}

void
BM_QuantizedEvaluation(benchmark::State &state)
{
    setQuiet(true);
    auto data = task();
    Rng rng(33);
    auto net = makeSmallResNet(1, 12, 6, 8, rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batchSize = 10;
    cfg.lr = 0.02f;
    train(*net, data, cfg);
    EvalOptions o;
    o.weightBits = 4;
    o.actBits = 4;
    for (auto _ : state) {
        const double acc = evaluate(*net, data.test, o);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_QuantizedEvaluation);

} // namespace

INCA_BENCH_MAIN(report)
