/**
 * @file
 * Figure 13a: ADC energy of the baseline versus INCA on VGG16 -- the
 * paper finds INCA's fine-grained 4-bit converters spend ~5x less in
 * total (one 8-bit conversion costs as much as four 4-bit ones).
 *
 * Figure 13b: INCA's overall energy breakdown, the apples-to-apples
 * counterpart of Fig. 6 -- the DRAM + buffer segment shrinks because
 * IS eliminates the per-window buffer round trips.
 */

#include "bench_common.hh"

#include "baseline/engine.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
report()
{
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::vgg16();

    bench::banner("Figure 13a: ADC energy, VGG16 (batch 64)");
    const auto wsRun = base.inference(net, 64);
    const auto isRun = inca.inference(net, 64);
    const double wsAdc = wsRun.sum("energy.adc");
    const double isAdc = isRun.sum("energy.adc");
    TextTable t({"design", "ADC config", "conversions", "ADC energy"});
    t.addRow({"baseline", "8-bit, 128x128 arrays",
              TextTable::count(wsRun.sum("count.adc")),
              formatSi(wsAdc, "J")});
    t.addRow({"INCA", "4-bit, 16x16x64 stacks",
              TextTable::count(isRun.sum("count.adc")),
              formatSi(isAdc, "J")});
    t.print();
    std::printf("reduction: %.1fx (paper: ~5x)\n", wsAdc / isAdc);

    bench::banner("Figure 13b: INCA energy breakdown, VGG16 "
                  "(batch 64)");
    const auto pct = sim::energyBreakdownPct(isRun);
    const auto abs = sim::energyBreakdown(isRun);
    TextTable tb({"component", "energy", "share"});
    for (const char *key : {"dram", "buffer", "adc", "array", "dac",
                            "digital", "static"}) {
        tb.addRow({key, formatSi(abs.at(key), "J"),
                   TextTable::num(pct.at(key), 1) + " %"});
    }
    tb.print();
    const auto wsAbs = sim::energyBreakdown(wsRun);
    std::printf("DRAM+buffer: INCA %s vs WS %s -- the Fig. 6 "
                "memory-system segment shrinks by %.1fx.\n",
                formatSi(abs.at("dram") + abs.at("buffer"), "J").c_str(),
                formatSi(wsAbs.at("dram") + wsAbs.at("buffer"),
                         "J").c_str(),
                (wsAbs.at("dram") + wsAbs.at("buffer")) /
                    (abs.at("dram") + abs.at("buffer")));
}

void
BM_AdcAccounting(benchmark::State &state)
{
    core::IncaEngine inca(arch::paperInca());
    const auto net = nn::vgg16();
    for (auto _ : state) {
        const auto run = inca.inference(net, 64);
        benchmark::DoNotOptimize(run.sum("energy.adc"));
    }
}
BENCHMARK(BM_AdcAccounting);

} // namespace

INCA_BENCH_MAIN(report)
