/**
 * @file
 * Chaos-layer overhead in the serving simulator.
 *
 * The failure machinery (per-server failure streams, health walks,
 * deadline/retry events, bounded admission) rides the same event
 * loop as the plain simulator; its cost must stay a modest multiple
 * of the chaos-off run over the identical arrival trace. Each
 * subject is timed chaos-off (isa "scalar") and with the full chaos
 * stack -- failures, retries, deadline, queue cap -- enabled (isa
 * "serving"), interleaved at repetition granularity so host drift
 * cancels in the ratio the gate compares. Both arms run cache-off.
 * The committed baseline (bench/baselines/BENCH_chaos.json) pins the
 * relative cost; bench_compare --relative-to-scalar fails a
 * confirmed >15% regression of it.
 *
 *   bench_chaos --json BENCH_chaos.json
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "common/cache.hh"
#include "common/env.hh"
#include "serving/simulator.hh"

namespace inca {
namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 9;
constexpr int kTrim = 2;

using Clock = std::chrono::steady_clock;
const Clock::time_point gEpoch = Clock::now();

struct Subject
{
    std::string name;
    serving::ServingSpec spec; ///< chaos-off arm; chaos added per run
};

/** The chaos-on variant of @p spec: the full feature stack. */
serving::ServingSpec
withChaos(serving::ServingSpec spec)
{
    spec.failures.enabled = true;
    spec.failures.mtbfS = 0.05;
    spec.failures.mttrS = 0.01;
    spec.failures.degradedFraction = 0.3;
    spec.failures.seed = 5;
    spec.retry.budget = 2;
    spec.retry.backoffBaseS = 1e-3;
    spec.deadlineS = 20e-3;
    spec.queueCap = 64;
    return spec;
}

std::vector<Subject>
subjects()
{
    // A lightly loaded shape (failure events dominate the extra
    // work) and a deep-overload burst (admission control and
    // deadline reaping on thousands of queued requests).
    std::vector<Subject> out;
    {
        Subject s;
        s.name = "chaos_lenet5_poisson";
        s.spec.streams = {serving::StreamSpec{"lenet5", 1.0, 0}};
        s.spec.arrivals.kind = serving::ArrivalKind::Poisson;
        s.spec.arrivals.ratePerS = 3000.0;
        s.spec.arrivals.seed = 7;
        s.spec.durationS = 0.5;
        s.spec.replicas = 2;
        s.spec.batch.maxBatch = 4;
        s.spec.batch.timeoutS = 1e-3;
        out.push_back(std::move(s));
    }
    {
        Subject s;
        s.name = "chaos_lenet5_bursty";
        s.spec.streams = {serving::StreamSpec{"lenet5", 1.0, 0}};
        s.spec.arrivals.kind = serving::ArrivalKind::Bursty;
        s.spec.arrivals.ratePerS = 20000.0;
        s.spec.arrivals.seed = 7;
        s.spec.durationS = 0.5;
        s.spec.replicas = 2;
        s.spec.batch.maxBatch = 8;
        s.spec.batch.timeoutS = 1e-3;
        out.push_back(std::move(s));
    }
    return out;
}

double
timeOnce(const Subject &subject, bool chaos)
{
    const serving::ServingSpec spec =
        chaos ? withChaos(subject.spec) : subject.spec;
    const Clock::time_point t0 = Clock::now();
    const serving::ServingReport rep = serving::simulate(spec);
    inca_assert(rep.offered > 0, "simulation saw no arrivals");
    inca_assert(rep.completed + rep.shed + rep.timedOut +
                        rep.failed ==
                    rep.offered,
                "outcomes do not partition the offered requests");
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    t0)
        .count();
}

void
runChaosBench()
{
    for (const Subject &subject : subjects()) {
        std::map<std::string, bench::BenchRun> runs;
        for (const char *isa : {"scalar", "serving"}) {
            bench::BenchRun &run = runs[isa];
            run.name = subject.name;
            run.isa = isa;
            run.warmup = kWarmup;
            run.trim = kTrim;
        }
        for (int rep = 0; rep < kWarmup + kReps; ++rep) {
            for (const char *isa : {"scalar", "serving"}) {
                const double ns =
                    timeOnce(subject,
                             std::string(isa) == "serving");
                if (rep < kWarmup)
                    continue;
                runs[isa].samplesNs.push_back(ns);
                runs[isa].timestampsUs.push_back(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   gEpoch)
                        .count());
            }
        }
        double scalarNs = 0.0;
        for (const char *isa : {"scalar", "serving"}) {
            bench::BenchRun &run = runs[isa];
            const double mean =
                bench::trimmedMean(run.samplesNs, kTrim);
            std::printf("  %-28s %-8s %12.3f us\n",
                        run.name.c_str(), run.isa.c_str(),
                        mean / 1e3);
            if (std::string(isa) == "scalar")
                scalarNs = mean;
            else
                bench::JsonReport::instance().addPoint(
                    "chaos_cost_vs_plain", subject.name,
                    scalarNs / mean);
            bench::JsonReport::instance().addBenchmark(
                std::move(run));
        }
    }
}

} // namespace
} // namespace inca

int
main(int argc, char **argv)
{
    inca::checkEnvironment();
    const std::string jsonPath =
        inca::bench::extractJsonPath(argc, argv);
    std::printf("=== chaos-layer overhead (warmup %d, reps %d, "
                "trim %d, cache off) ===\n",
                inca::kWarmup, inca::kReps, inca::kTrim);
    inca::setCacheEnabled(false);
    inca::runChaosBench();
    if (!jsonPath.empty())
        inca::bench::JsonReport::instance().write(jsonPath);
    return 0;
}
