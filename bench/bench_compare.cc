/**
 * @file
 * CLI wrapper over compareBench(): the CI perf gate.
 *
 *   bench_compare BASELINE.json CURRENT.json [--threshold 0.15]
 *                 [--normalize BENCH_NAME] [--require-all]
 *
 * Exit 0 when no benchmark regressed past the threshold; exit 1 on a
 * regression, a missing entry under --require-all, or an unreadable /
 * off-schema file. Regressions and notes go to stdout, one per line.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_compare.hh"

namespace {

bool
readFile(const char *path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CURRENT.json "
                 "[--threshold FRAC] [--normalize BENCH] "
                 "[--relative-to-scalar] [--require-all]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *baselinePath = nullptr;
    const char *currentPath = nullptr;
    inca::bench::CompareOptions opts;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 &&
            i + 1 < argc) {
            opts.threshold = std::atof(argv[++i]);
            if (opts.threshold <= 0.0) {
                std::fprintf(stderr, "bad --threshold '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--normalize") == 0 &&
                   i + 1 < argc) {
            opts.normalize = argv[++i];
        } else if (std::strcmp(argv[i], "--relative-to-scalar") ==
                   0) {
            opts.relativeToScalar = true;
        } else if (std::strcmp(argv[i], "--require-all") == 0) {
            opts.requireAll = true;
        } else if (baselinePath == nullptr) {
            baselinePath = argv[i];
        } else if (currentPath == nullptr) {
            currentPath = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (baselinePath == nullptr || currentPath == nullptr)
        return usage(argv[0]);

    std::string baseline, current;
    if (!readFile(baselinePath, baseline)) {
        std::fprintf(stderr, "cannot read '%s'\n", baselinePath);
        return 1;
    }
    if (!readFile(currentPath, current)) {
        std::fprintf(stderr, "cannot read '%s'\n", currentPath);
        return 1;
    }

    const auto res =
        inca::bench::compareBench(baseline, current, opts);
    if (!res.error.empty()) {
        std::fprintf(stderr, "bench_compare: %s\n",
                     res.error.c_str());
        return 1;
    }
    for (const auto &n : res.notes)
        std::printf("note: %s\n", n.c_str());
    for (const auto &r : res.regressions)
        std::printf("REGRESSION: %s\n", r.c_str());
    std::string mode;
    if (!opts.normalize.empty())
        mode += ", normalized to " + opts.normalize;
    if (opts.relativeToScalar)
        mode += ", relative to scalar";
    std::printf("%s: %zu notes, %zu regressions "
                "(threshold %.0f%%%s)\n",
                res.ok ? "OK" : "FAIL", res.notes.size(),
                res.regressions.size(), 100.0 * opts.threshold,
                mode.c_str());
    return res.ok ? 0 : 1;
}
