/**
 * @file
 * Figure 15: INCA versus a Titan RTX GPU in training -- (a)
 * normalized energy efficiency and (b) iso-area throughput
 * (throughput per mm^2). The paper finds INCA ahead on both, with the
 * largest margins on energy and on the light models.
 */

#include "bench_common.hh"

#include "arch/area.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "gpu/gpu_model.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 15: INCA vs. GPU (Titan RTX), training, "
                  "batch 64");
    core::IncaEngine inca(arch::paperInca());
    gpu::GpuModel titan;
    const double incaAreaMm2 =
        arch::incaArea(arch::paperInca()).total() * 1e6;
    const double gpuAreaMm2 = titan.spec().dieArea * 1e6;

    TextTable t({"network", "INCA E/img", "GPU E/img",
                 "energy-eff gain", "INCA img/s/mm^2",
                 "GPU img/s/mm^2", "iso-area gain"});
    for (const auto &net : nn::evaluationSuite()) {
        const auto i = inca.training(net, 64);
        const auto g = titan.training(net, 64);
        const double gainE =
            (g.energy / 64.0) / i.energyPerImage();
        const double iThr = i.throughput() / incaAreaMm2;
        const double gThr = g.throughput(64) / gpuAreaMm2;
        t.addRow({net.name, formatSi(i.energyPerImage(), "J"),
                  formatSi(g.energy / 64.0, "J"),
                  TextTable::ratio(gainE), TextTable::num(iThr, 2),
                  TextTable::num(gThr, 2),
                  TextTable::ratio(iThr / gThr)});
    }
    t.print();
    std::printf("shape check (paper): INCA outperforms the GPU in "
                "both metrics, \"particularly conducive to energy "
                "saving across network models and to throughput in "
                "light models\". Areas: INCA %.1f mm^2 vs GPU %.0f "
                "mm^2.\n",
                incaAreaMm2, gpuAreaMm2);
}

void
BM_GpuRoofline(benchmark::State &state)
{
    gpu::GpuModel titan;
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &net : suite)
            total += titan.training(net, 64).energy;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_GpuRoofline);

} // namespace

INCA_BENCH_MAIN(report)
