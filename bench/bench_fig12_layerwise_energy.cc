/**
 * @file
 * Figure 12: layerwise DRAM + buffer energy of the WS baseline and
 * INCA executing VGG16 (ImageNet, batch 64). The paper's shape: the
 * baseline is dominated by the window-heavy early layers, INCA's
 * profile is nearly flat (kernels of similar size are fetched and
 * reused per layer), and in a few late layers INCA can even consume
 * more -- a crossover with negligible impact on the total.
 */

#include "bench_common.hh"

#include <cmath>

#include "baseline/engine.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 12: layerwise DRAM+buffer energy, VGG16 "
                  "(batch 64)");
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::vgg16();

    const auto ws = sim::layerwiseMemoryEnergy(base.inference(net, 64));
    const auto is = sim::layerwiseMemoryEnergy(inca.inference(net, 64));

    TextTable t({"layer", "WS", "INCA", "log10(WS/INCA)"});
    double wsTotal = 0.0, isTotal = 0.0;
    for (size_t i = 0; i < ws.size(); ++i) {
        wsTotal += ws[i].second;
        isTotal += is[i].second;
        const double ratio =
            is[i].second > 0.0 ? ws[i].second / is[i].second : 0.0;
        t.addRow({ws[i].first, formatSi(ws[i].second, "J"),
                  formatSi(is[i].second, "J"),
                  ratio > 0.0 ? TextTable::num(std::log10(ratio), 2)
                              : "-"});
    }
    t.addRule();
    t.addRow({"total", formatSi(wsTotal, "J"), formatSi(isTotal, "J"),
              TextTable::num(std::log10(wsTotal / isTotal), 2)});
    t.print();
    std::printf("shape check: WS is front-loaded (early layers carry "
                "most window traffic); INCA stays flat and can exceed "
                "WS only in late small layers.\n");
}

void
BM_LayerwiseExtraction(benchmark::State &state)
{
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::vgg16();
    for (auto _ : state) {
        const auto run = base.inference(net, 64);
        const auto series = sim::layerwiseMemoryEnergy(run);
        benchmark::DoNotOptimize(series.size());
    }
}
BENCHMARK(BM_LayerwiseExtraction);

} // namespace

INCA_BENCH_MAIN(report)
