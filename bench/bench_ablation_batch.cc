/**
 * @file
 * Ablation (beyond the paper's figures): how INCA's advantage scales
 * with the batch size. The 3D stacks hold 64 planes, so batches up to
 * 64 train "for the price of one" while the WS baseline pays per
 * image -- the mechanism behind the Fig. 11b/14b training gains. This
 * sweep makes the design choice quantitative: the gains grow with the
 * batch until the plane count saturates, then flatten.
 */

#include "bench_common.hh"

#include <vector>

#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Ablation: batch-size sweep (ResNet18, training)");
    core::IncaEngine inca(arch::paperInca());
    baseline::BaselineEngine base(arch::paperBaseline());
    const auto net = nn::resnet18();

    // Each batch size is an independent design point: fan them across
    // the pool, each writing its own pre-sized slot so the table is
    // identical at any thread count.
    TextTable t({"batch", "INCA E/img", "INCA t/img", "energy gain",
                 "speedup"});
    const std::vector<int> batches = {1, 4, 16, 64, 128, 256};
    std::vector<std::vector<std::string>> rows(batches.size());
    // Pre-sized per-batch slots: pool threads write only their own
    // entries; the JSON points are registered serially afterwards.
    std::vector<double> gains(batches.size()), speedups(batches.size());
    {
        sim::ScopedPhaseTimer timer("batch-size sweep");
        parallel_for(
            std::int64_t(batches.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const int batch = batches[size_t(i)];
                    const auto c = sim::compare(
                        inca, base, net, batch, arch::Phase::Training);
                    gains[size_t(i)] = c.energyEfficiencyGain();
                    speedups[size_t(i)] = c.speedup();
                    rows[size_t(i)] = {
                        std::to_string(batch),
                        formatSi(c.inca.energyPerImage(), "J"),
                        formatSi(c.inca.latencyPerImage(), "s"),
                        TextTable::ratio(c.energyEfficiencyGain()),
                        TextTable::ratio(c.speedup())};
                }
            });
    }
    for (size_t i = 0; i < batches.size(); ++i) {
        bench::JsonReport::instance().addPoint(
            "training_energy_gain", std::to_string(batches[i]),
            gains[i]);
        bench::JsonReport::instance().addPoint(
            "training_speedup", std::to_string(batches[i]),
            speedups[i]);
    }
    for (const auto &row : rows)
        t.addRow(row);
    t.print();
    std::printf("the gains climb until the batch fills the 64 planes "
                "of each 3D stack, then flatten (batches beyond 64 "
                "run in waves).\n");

    bench::banner("Ablation: stacked-plane count (VGG16, training, "
                  "batch 64)");
    TextTable tp({"planes", "energy gain", "speedup"});
    const std::vector<int> planeCounts = {8, 16, 32, 64};
    std::vector<std::vector<std::string>> planeRows(planeCounts.size());
    {
        sim::ScopedPhaseTimer timer("stacked-plane sweep");
        parallel_for(
            std::int64_t(planeCounts.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    arch::IncaConfig cfg = arch::paperInca();
                    cfg.stackedPlanes = planeCounts[size_t(i)];
                    core::IncaEngine engine(cfg);
                    const auto c = sim::compare(
                        engine, base, nn::vgg16(), 64,
                        arch::Phase::Training);
                    planeRows[size_t(i)] = {
                        std::to_string(planeCounts[size_t(i)]),
                        TextTable::ratio(c.energyEfficiencyGain()),
                        TextTable::ratio(c.speedup())};
                }
            });
    }
    for (const auto &row : planeRows)
        tp.addRow(row);
    tp.print();
    std::printf("fewer planes -> more batch waves -> the training "
                "advantage shrinks; Table II's 64 planes match the "
                "batch size for a reason.\n");

    sim::printPhaseTimes();
}

void
BM_BatchSweep(benchmark::State &state)
{
    core::IncaEngine inca(arch::paperInca());
    const auto net = nn::resnet18();
    for (auto _ : state) {
        double total = 0.0;
        for (int batch : {1, 16, 64})
            total += inca.training(net, batch).energy();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_BatchSweep);

} // namespace

INCA_BENCH_MAIN(report)
