/**
 * @file
 * Table IV: required memory footprint (RRAM arrays and buffers) to
 * support both inference and training, baseline versus INCA. Our
 * structural model (baseline RRAM = 2 x weights + activations;
 * baseline buffers = activations; INCA RRAM = activations; INCA
 * buffers = weights; all at 8-bit, in MiB) reproduces the paper's
 * numbers nearly exactly.
 */

#include "bench_common.hh"

#include "common/table.hh"
#include "dataflow/footprint.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Table IV: memory footprint [MiB] for inference + "
                  "training");
    const struct
    {
        const char *name;
        double bRram, bBuf, iRram, iBuf;
    } paper[] = {
        {"vgg16", 272.57, 8.69, 8.69, 131.94},
        {"vgg19", 283.94, 9.94, 9.94, 137.00},
        {"resnet18", 24.36, 2.08, 2.08, 11.14},
        {"resnet50", 58.79, 10.15, 10.15, 24.32},
        {"mobilenetv2", 13.05, 6.45, 6.45, 3.31},
        {"mnasnet", 13.57, 5.29, 5.29, 4.14},
    };

    TextTable t({"network", "base RRAM", "(paper)", "base buf",
                 "(paper)", "INCA RRAM", "(paper)", "INCA buf",
                 "(paper)"});
    const auto suite = nn::evaluationSuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto row = dataflow::footprint(suite[i]);
        t.addRow({suite[i].name,
                  TextTable::num(dataflow::toMiB(row.baseline.rram)),
                  TextTable::num(paper[i].bRram),
                  TextTable::num(dataflow::toMiB(row.baseline.buffers)),
                  TextTable::num(paper[i].bBuf),
                  TextTable::num(dataflow::toMiB(row.inca.rram)),
                  TextTable::num(paper[i].iRram),
                  TextTable::num(dataflow::toMiB(row.inca.buffers)),
                  TextTable::num(paper[i].iBuf)});
    }
    t.print();
    std::printf("Limitation 2 in numbers: the WS baseline must hold a "
                "transposed weight copy and the activations in RRAM; "
                "INCA recycles the activation cells for errors and "
                "reads the transposed weights from the same buffer "
                "bytes.\n");
}

void
BM_Footprint(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &net : suite)
            total += dataflow::footprint(net).baseline.rram;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_Footprint);

} // namespace

INCA_BENCH_MAIN(report)
