/**
 * @file
 * Table III: estimated buffer accesses during inference, baseline
 * (Eq. 5 x O_H x O_W + Eq. 6) versus INCA (Eq. 5 x N), under the
 * Table II configuration (8-bit data, 256-bit bus, convolution
 * layers). Our INCA column reproduces the paper's VGG16 / VGG19 /
 * ResNet18 values to <0.1 %; the remaining networks' block details
 * differ slightly from the authors' reconstruction.
 */

#include "bench_common.hh"

#include "common/table.hh"
#include "dataflow/access_model.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Table III: buffer accesses during inference "
                  "(8-bit data, 256-bit bus)");
    const dataflow::AccessConfig cfg{8, 256};
    const struct
    {
        const char *name;
        double paperBase, paperInca;
    } paper[] = {
        {"vgg16", 1544496, 460000},   {"vgg19", 1952176, 625888},
        {"resnet18", 632880, 349024}, {"resnet50", 711022, 508950},
        {"mobilenetv2", 258024, 66832}, {"mnasnet", 244656, 92333},
    };

    TextTable t({"network", "baseline (ours)", "baseline (paper)",
                 "INCA (ours)", "INCA (paper)"});
    const auto suite = nn::evaluationSuite();
    for (size_t i = 0; i < suite.size(); ++i) {
        const auto s = dataflow::networkAccesses(suite[i], cfg);
        t.addRow({suite[i].name, TextTable::count(double(s.baseline)),
                  TextTable::count(paper[i].paperBase),
                  TextTable::count(double(s.inca)),
                  TextTable::count(paper[i].paperInca)});
    }
    t.print();
    std::printf("training roughly doubles INCA's accesses "
                "(transposed-weight fetches):\n");
    TextTable tt({"network", "inference (IS)", "training (IS)"});
    for (const auto &net : suite) {
        const auto inf = dataflow::networkAccesses(net, cfg);
        const auto trn = dataflow::networkTrainingAccesses(net, cfg);
        tt.addRow({net.name, TextTable::count(double(inf.inca)),
                   TextTable::count(double(trn.inca))});
    }
    tt.print();
}

void
BM_TableIII(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    const dataflow::AccessConfig cfg{8, 256};
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (const auto &net : suite)
            total += dataflow::networkAccesses(net, cfg).inca;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_TableIII);

} // namespace

INCA_BENCH_MAIN(report)
