/**
 * @file
 * Figure 16: (a) INCA's utilization versus array size -- 16 x 16 is
 * the sweet spot, larger planes waste cells on the small late-layer
 * feature maps; (b) utilization across the evaluation networks --
 * INCA stays flat while the WS baseline collapses on the depthwise /
 * pointwise light models (3x3 depthwise kernels use 9 of 128 rows).
 */

#include "bench_common.hh"

#include "arch/utilization.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"
#include "sim/plot.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 16a: INCA utilization vs. array size");
    const int sizes[] = {8, 16, 32, 64, 128};
    {
        std::vector<std::string> headers{"network"};
        for (int s : sizes)
            headers.push_back(std::to_string(s) + "x" +
                              std::to_string(s));
        TextTable t(headers);
        for (const auto &net : nn::evaluationSuite()) {
            std::vector<std::string> row{net.name};
            for (int s : sizes) {
                row.push_back(TextTable::num(
                    100.0 * arch::incaNetworkUtilization(net, s), 1));
            }
            t.addRow(row);
        }
        t.print();
        std::printf("(values in %%; the paper picks 16x16 as the "
                    "smallest size with competitive utilization)\n");
    }

    bench::banner("Figure 16b: utilization, INCA (16x16) vs. WS "
                  "baseline (128x128)");
    TextTable t({"network", "INCA", "WS baseline"});
    for (const auto &net : nn::evaluationSuite()) {
        t.addRow({net.name,
                  TextTable::num(
                      100.0 * arch::incaNetworkUtilization(net, 16),
                      1) + " %",
                  TextTable::num(
                      100.0 * arch::wsNetworkUtilization(net, 128),
                      1) + " %"});
    }
    t.print();
    std::vector<sim::Bar> bars;
    for (const auto &net : nn::evaluationSuite()) {
        bars.push_back({net.name + " (INCA)",
                        100.0 * arch::incaNetworkUtilization(net, 16)});
        bars.push_back({net.name + " (WS)",
                        100.0 * arch::wsNetworkUtilization(net, 128)});
    }
    sim::BarOptions bopt;
    bopt.unit = "%";
    std::printf("\n%s", sim::barChart(bars, bopt).c_str());
    std::printf("shape check: INCA stays roughly constant across "
                "networks; WS collapses on MobileNetV2 / MNasNet "
                "(depthwise kernels fill 9 of 128 rows).\n");
}

void
BM_UtilizationSweep(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &net : suite)
            for (int s : {8, 16, 32, 64, 128})
                total += arch::incaNetworkUtilization(net, s);
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_UtilizationSweep);

} // namespace

INCA_BENCH_MAIN(report)
