/**
 * @file
 * Shared scaffolding for the reproduction benchmarks.
 *
 * Every bench binary (a) prints the rows/series of the paper table or
 * figure it regenerates -- paper values side by side with measured
 * ones where the paper prints numbers -- and (b) registers
 * google-benchmark timers over the underlying computation so the cost
 * of regenerating each artifact is tracked.
 */

#ifndef INCA_BENCH_BENCH_COMMON_HH
#define INCA_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_json.hh"
#include "common/env.hh"

namespace inca {
namespace bench {

/** Print a titled section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Standard main: print the report once, write the JSON report when
 * `--json <path>` was given, then run the benchmarks (the flag is
 * stripped before google-benchmark parses argv).
 */
#define INCA_BENCH_MAIN(reportFn)                                        \
    int main(int argc, char **argv)                                      \
    {                                                                    \
        ::inca::checkEnvironment();                                      \
        const std::string jsonPath =                                     \
            ::inca::bench::extractJsonPath(argc, argv);                  \
        reportFn();                                                      \
        if (!jsonPath.empty())                                           \
            ::inca::bench::JsonReport::instance().write(jsonPath);       \
        ::benchmark::Initialize(&argc, argv);                            \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))        \
            return 1;                                                    \
        ::benchmark::RunSpecifiedBenchmarks();                           \
        ::benchmark::Shutdown();                                         \
        return 0;                                                        \
    }

} // namespace bench
} // namespace inca

#endif // INCA_BENCH_BENCH_COMMON_HH
