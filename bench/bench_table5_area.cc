/**
 * @file
 * Table V: chip area breakdown of the baseline and INCA. The 3D
 * stacking of the 2T1R planes (16 cells per projected footprint) and
 * the 4-bit ADCs give INCA a 47.9 vs. 84.1 mm^2 advantage despite the
 * larger two-transistor cell.
 */

#include "bench_common.hh"

#include "arch/area.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Table V: area breakdown [mm^2]");
    const auto base = arch::baselineArea(arch::paperBaseline());
    const auto inca = arch::incaArea(arch::paperInca());

    const struct
    {
        const char *name;
        double ours[2];
        double paper[2]; // baseline, INCA
    } rows[] = {
        {"Buffer", {base.buffer * 1e6, inca.buffer * 1e6},
         {13.944, 13.944}},
        {"Array", {base.array * 1e6, inca.array * 1e6},
         {7.927, 0.793}},
        {"ADC", {base.adc * 1e6, inca.adc * 1e6}, {30.298, 4.5864}},
        {"DAC", {base.dac * 1e6, inca.dac * 1e6}, {0.343, 0.686}},
        {"Post-processing",
         {base.postProcessing * 1e6, inca.postProcessing * 1e6},
         {3.656, 3.656}},
        {"Others", {base.others * 1e6, inca.others * 1e6},
         {27.920, 24.249}},
        {"Total", {base.total() * 1e6, inca.total() * 1e6},
         {84.088, 47.914}},
    };

    TextTable t({"component", "baseline", "(paper)", "INCA",
                 "(paper)"});
    for (const auto &row : rows) {
        t.addRow({row.name, TextTable::num(row.ours[0], 3),
                  TextTable::num(row.paper[0], 3),
                  TextTable::num(row.ours[1], 3),
                  TextTable::num(row.paper[1], 3)});
    }
    t.print();
    std::printf("one baseline crossbar: %.2f um^2; one INCA 3D "
                "stack: %.2f um^2 (paper: 491.52 vs 49.152 um^2)\n",
                arch::baselineSubarrayArea(arch::paperBaseline()) *
                    1e12,
                arch::incaStackArea(arch::paperInca()) * 1e12);
}

void
BM_AreaRollup(benchmark::State &state)
{
    const auto baseCfg = arch::paperBaseline();
    const auto incaCfg = arch::paperInca();
    for (auto _ : state) {
        const double total = arch::baselineArea(baseCfg).total() +
                             arch::incaArea(incaCfg).total();
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_AreaRollup);

} // namespace

INCA_BENCH_MAIN(report)
