/**
 * @file
 * Bottleneck-analysis overhead vs the bare event schedule.
 *
 * The analysis layer re-walks the schedule the event backend already
 * produced: critical-path extraction, exact share accumulation,
 * occupancy sweeps, and slack. This bench pins that price relative to
 * the schedule itself: each subject program is lowered once and then
 * timed through event::execute alone (isa "scalar") and
 * event::execute + event::analyze with the what-if sweep disabled
 * (isa "analysis"), interleaved at repetition granularity so host
 * drift cancels in the ratio the gate compares. The committed
 * baseline (bench/baselines/BENCH_analysis.json) pins the relative
 * cost; bench_compare --relative-to-scalar fails a confirmed >15%
 * regression of it.
 *
 *   bench_analysis --json BENCH_analysis.json
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "bench_json.hh"
#include "common/cache.hh"
#include "common/env.hh"
#include "event/analysis.hh"
#include "event/event.hh"
#include "ir/lower.hh"
#include "nn/model_zoo.hh"

namespace inca {
namespace {

constexpr int kWarmup = 1;
constexpr int kReps = 9;
constexpr int kTrim = 2;

using Clock = std::chrono::steady_clock;
const Clock::time_point gEpoch = Clock::now();

struct Subject
{
    std::string name;
    ir::Program program;
};

std::vector<Subject>
subjects()
{
    // The same two stream shapes the event bench pins: a deep serial
    // inference chain and a training stream with triple the
    // instruction count (and so triple the path/occupancy work).
    std::vector<Subject> out;
    out.push_back({"analysis_vgg16_inference",
                   ir::lowerInca(arch::paperInca(), nn::vgg16(),
                                 arch::Phase::Inference, 64)});
    out.push_back({"analysis_resnet18_training",
                   ir::lowerInca(arch::paperInca(), nn::resnet18(),
                                 arch::Phase::Training, 64)});
    return out;
}

double
timeOnce(const ir::Program &p, bool withAnalysis)
{
    const Clock::time_point t0 = Clock::now();
    const event::TimedRun timed = event::execute(p);
    inca_assert(timed.makespan > 0.0, "backend produced nothing");
    if (withAnalysis) {
        event::AnalyzeOptions opts;
        opts.runWhatIf = false;
        const event::Report r = event::analyze(p, timed, opts);
        inca_assert(!r.path.empty(), "analysis produced nothing");
    }
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    t0)
        .count();
}

void
runAnalysisBench()
{
    for (const Subject &subject : subjects()) {
        std::map<std::string, bench::BenchRun> runs;
        for (const char *isa : {"scalar", "analysis"}) {
            bench::BenchRun &run = runs[isa];
            run.name = subject.name;
            run.isa = isa;
            run.warmup = kWarmup;
            run.trim = kTrim;
        }
        for (int rep = 0; rep < kWarmup + kReps; ++rep) {
            for (const char *isa : {"scalar", "analysis"}) {
                const double ns =
                    timeOnce(subject.program,
                             std::string(isa) == "analysis");
                if (rep < kWarmup)
                    continue;
                runs[isa].samplesNs.push_back(ns);
                runs[isa].timestampsUs.push_back(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   gEpoch)
                        .count());
            }
        }
        double scalarNs = 0.0;
        for (const char *isa : {"scalar", "analysis"}) {
            bench::BenchRun &run = runs[isa];
            const double mean =
                bench::trimmedMean(run.samplesNs, kTrim);
            std::printf("  %-28s %-8s %12.3f us\n",
                        run.name.c_str(), run.isa.c_str(),
                        mean / 1e3);
            if (std::string(isa) == "scalar")
                scalarNs = mean;
            else
                bench::JsonReport::instance().addPoint(
                    "analysis_cost_vs_schedule", subject.name,
                    scalarNs / mean);
            bench::JsonReport::instance().addBenchmark(
                std::move(run));
        }
    }
}

} // namespace
} // namespace inca

int
main(int argc, char **argv)
{
    inca::checkEnvironment();
    const std::string jsonPath =
        inca::bench::extractJsonPath(argc, argv);
    std::printf("=== bottleneck-analysis overhead (warmup %d, "
                "reps %d, trim %d, cache off) ===\n",
                inca::kWarmup, inca::kReps, inca::kTrim);
    inca::setCacheEnabled(false);
    inca::runAnalysisBench();
    if (!jsonPath.empty())
        inca::bench::JsonReport::instance().write(jsonPath);
    return 0;
}
