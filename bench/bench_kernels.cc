/**
 * @file
 * Microkernel perf trajectory: every dispatched kernel, every ISA.
 *
 * Unlike the paper-figure benches this one has a custom main (no
 * google-benchmark): the measurement protocol is the point. Every
 * benchmark runs kWarmup discarded repetitions, then kReps timed
 * ones with per-rep end timestamps, and reports the kTrim-trimmed
 * mean -- the exact statistic bench_json.hh stores and the CI gate
 * compares. Seeds are fixed, iteration counts are fixed, and the
 * kernel ISA is forced per measurement via kernels::setActive().
 *
 * ISAs are INTERLEAVED at repetition granularity: rep i of the
 * scalar, AVX2 and AVX-512 variants of one workload run
 * back-to-back, milliseconds apart, so slow drift in the host's
 * throughput (noisy neighbours, thermal/steal state -- minutes-scale
 * effects on shared runners) lands equally in every ISA's samples
 * and cancels out of the speedup ratios the regression gate
 * compares.
 *
 *   bench_kernels --json BENCH_kernels.json
 *
 * The headline series: gemm speedup vs the scalar reference, per ISA
 * -- the measured answer to "was the SIMD overhaul worth it".
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "common/env.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "reliability/fault_model.hh"
#include "tensor/kernels/kernels.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace inca {
namespace {

constexpr int kWarmup = 2;
constexpr int kReps = 15;
constexpr int kTrim = 3;

using Clock = std::chrono::steady_clock;
const Clock::time_point gEpoch = Clock::now();

std::int64_t
sinceEpochUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - gEpoch)
        .count();
}

/** One dispatched workload, measurable under any KernelSet. */
struct Workload
{
    std::string name;
    int inner; ///< fn calls per timed repetition
    std::function<void(const kernels::KernelSet &)> fn;
};

/**
 * Time one repetition: @p inner calls of @p fn under @p isa, ns per
 * call. The workload must write to heap buffers that outlive the
 * call so nothing is optimized away.
 */
double
timeRep(const Workload &w, kernels::Isa isa)
{
    kernels::setActive(isa);
    const kernels::KernelSet &ks = *kernels::kernelSet(isa);
    const Clock::time_point t0 = Clock::now();
    for (int it = 0; it < w.inner; ++it)
        w.fn(ks);
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    t0)
               .count() /
           double(w.inner);
}

/**
 * Measure @p w under every ISA in @p isas, interleaving them within
 * each repetition, and record one BenchRun per ISA.
 */
void
runWorkload(const Workload &w, const std::vector<kernels::Isa> &isas)
{
    std::map<kernels::Isa, bench::BenchRun> runs;
    for (kernels::Isa isa : isas) {
        bench::BenchRun &run = runs[isa];
        run.name = w.name;
        run.isa = kernels::isaName(isa);
        run.warmup = kWarmup;
        run.trim = kTrim;
    }
    for (int rep = 0; rep < kWarmup + kReps; ++rep) {
        for (kernels::Isa isa : isas) {
            const double ns = timeRep(w, isa);
            if (rep < kWarmup)
                continue;
            runs[isa].samplesNs.push_back(ns);
            runs[isa].timestampsUs.push_back(sinceEpochUs());
        }
    }
    double scalarNs = 0.0;
    for (kernels::Isa isa : isas) {
        bench::BenchRun &run = runs[isa];
        const double mean = bench::trimmedMean(run.samplesNs, kTrim);
        std::printf("  %-28s %-7s %12.0f ns\n", w.name.c_str(),
                    run.isa.c_str(), mean);
        if (isa == kernels::Isa::Scalar)
            scalarNs = mean;
        else if (mean > 0.0)
            bench::JsonReport::instance().addPoint(
                "speedup_vs_scalar",
                w.name + "/" + kernels::isaName(isa),
                scalarNs / mean);
        bench::JsonReport::instance().addBenchmark(std::move(run));
    }
}

void
runKernelBenches()
{
    // Raw-kernel operands (fixed seed; every ISA chews the same
    // bytes, and the buffers outlive every measurement).
    Rng rng(kDefaultSeed);
    const std::int64_t M = 128, K = 128, N = 128;
    std::vector<float> a(std::size_t(M * K)), b(std::size_t(K * N)),
        c(std::size_t(M * N));
    for (auto &v : a)
        v = float(rng.uniform(-1.0, 1.0));
    for (auto &v : b)
        v = float(rng.uniform(-1.0, 1.0));

    const std::int64_t kCopy = 65536;
    std::vector<float> src(std::size_t(kCopy * 2), 0.0f);
    std::vector<float> dst(std::size_t(kCopy), 0.0f);
    for (auto &v : src)
        v = float(rng.uniform(-1.0, 1.0));

    std::vector<double> uniforms(65536);
    SplitMix64 sm(7);
    for (auto &v : uniforms)
        v = sm.uniform();

    // Tensor-op operands: a conv layer with stride, padding, and a
    // non-multiple-of-vector width, so packing tails get exercised.
    Rng trng(123);
    const tensor::Tensor x =
        tensor::Tensor::randn({4, 8, 28, 28}, trng);
    const tensor::Tensor w =
        tensor::Tensor::randn({16, 8, 5, 5}, trng);
    const tensor::ConvSpec spec{1, 2};
    const tensor::Tensor y = tensor::conv2d(x, w, spec);

    const reliability::FaultSpec fspec = [] {
        reliability::FaultSpec f;
        f.hardBer0 = 1e-3;
        f.seed = 99;
        return f;
    }();
    const reliability::FaultModel fmodel(fspec, 0.0);

    const std::vector<Workload> workloads = {
        {"gemm_m128_k128_n128", 2,
         [&](const kernels::KernelSet &ks) {
             std::fill(c.begin(), c.end(), 0.0f);
             ks.gemmRowRange(a.data(), K, b.data(), N, c.data(), N,
                             0, M, K, N);
         }},
        {"copy_row_64k", 100,
         [&](const kernels::KernelSet &ks) {
             ks.copyRow(dst.data(), src.data(), kCopy);
         }},
        {"gather_row_32k_stride2", 100,
         [&](const kernels::KernelSet &ks) {
             ks.gatherRow(dst.data(), src.data(), kCopy / 2, 2);
         }},
        {"scan_below_64k", 100,
         [&](const kernels::KernelSet &ks) {
             volatile std::int64_t sink = ks.scanBelow(
                 uniforms.data(), std::int64_t(uniforms.size()),
                 1e-9);
             (void)sink;
         }},
        // The tensor/fault workloads dispatch internally via
        // kernels::active(); setActive() in timeRep routes them.
        {"conv2d_fwd_4x8x28x28", 1,
         [&](const kernels::KernelSet &) {
             (void)tensor::conv2d(x, w, spec);
         }},
        {"conv2d_input_grad", 1,
         [&](const kernels::KernelSet &) {
             (void)tensor::conv2dInputGrad(y, w, x.shape(), spec);
         }},
        {"conv2d_weight_grad", 1,
         [&](const kernels::KernelSet &) {
             (void)tensor::conv2dWeightGrad(y, x, w.shape(), spec);
         }},
        {"fault_sample_256x256", 4,
         [&](const kernels::KernelSet &) {
             (void)fmodel.sample(256, 256, 1);
         }},
    };

    const std::vector<kernels::Isa> isas = kernels::availableIsas();
    for (const Workload &w : workloads)
        runWorkload(w, isas);
    kernels::resetActive();

    // ISA-independent: the batched splitmix64 stream vs the same
    // draws made one next() call at a time -- interleaved the same
    // way so their ratio is drift-free too.
    std::vector<double> batch(65536);
    const std::vector<Workload> rngWorkloads = {
        {"splitmix_uniform_batch_64k", 20,
         [&](const kernels::KernelSet &) {
             SplitMix64 gen(kDefaultSeed);
             gen.uniformBatch(batch.data(), batch.size());
         }},
        {"splitmix_uniform_seq_64k", 20,
         [&](const kernels::KernelSet &) {
             SplitMix64 gen(kDefaultSeed);
             for (auto &v : batch)
                 v = gen.uniform();
         }},
    };
    for (const Workload &w : rngWorkloads)
        runWorkload(w, {kernels::Isa::Scalar});
    kernels::resetActive();
}

} // namespace
} // namespace inca

int
main(int argc, char **argv)
{
    inca::checkEnvironment();
    const std::string jsonPath =
        inca::bench::extractJsonPath(argc, argv);
    std::printf("=== kernel microbenchmarks (warmup %d, reps %d, "
                "trim %d, ISA-interleaved) ===\n",
                inca::kWarmup, inca::kReps, inca::kTrim);
    inca::runKernelBenches();
    if (!jsonPath.empty())
        inca::bench::JsonReport::instance().write(jsonPath);
    return 0;
}
