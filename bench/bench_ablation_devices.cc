/**
 * @file
 * Paper Section VI implemented: IS dataflow on PIM technologies
 * beyond RRAM. The paper leaves "IS implementation into other designs
 * as our future work to exploit more stable properties of other
 * hardware candidates"; this bench runs the INCA engine with device
 * presets for PCM, FeFET and SRAM-CIM next to the Table II RRAM and
 * reports the trade the paper anticipates: stabler technologies buy
 * endurance (and sometimes speed) at area or volatility cost.
 */

#include "bench_common.hh"

#include <vector>

#include "arch/endurance.hh"
#include "circuit/devices.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "inca/engine.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1e", v);
    return buf;
}

void
report()
{
    bench::banner("Section VI: IS dataflow on alternative PIM "
                  "devices (ResNet18, training, batch 64)");
    const auto net = nn::resnet18();

    // Device presets are independent: fan them across the pool into
    // pre-sized row slots so the table is identical at any thread
    // count.
    TextTable t({"device", "E/batch", "t/batch", "standby",
                 "wear-out iters", "cell area vs 2T1R"});
    const auto presets = circuit::allDevicePresets();
    std::vector<std::vector<std::string>> rows(presets.size());
    {
        sim::ScopedPhaseTimer timer("device sweep");
        parallel_for(
            std::int64_t(presets.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const auto &preset = presets[size_t(i)];
                    arch::IncaConfig cfg = arch::paperInca();
                    cfg.device = preset.device;
                    core::IncaEngine engine(cfg);
                    const auto run = engine.training(net, 64);
                    // Volatile technologies pay retention power over
                    // the run.
                    const Joules standby =
                        preset.standbyPowerPerCell *
                        double(cfg.totalCells()) * run.latency;
                    const auto wear = arch::incaEndurance(
                        net, cfg, 64, preset.endurance);
                    char area[32];
                    std::snprintf(area, sizeof(area), "%.1fx",
                                  preset.cellAreaFactor);
                    rows[size_t(i)] = {
                        preset.name,
                        formatSi(run.energy() + standby, "J"),
                        formatSi(run.latency, "s"),
                        preset.nonVolatile ? "-"
                                           : formatSi(standby, "J"),
                        sci(wear.iterationsToWearOut), area};
                }
            });
    }
    for (const auto &row : rows)
        t.addRow(row);
    t.print();
    std::printf("the trade the paper anticipates: FeFET/SRAM-CIM "
                "extend the write-endurance horizon by 1-7 orders of "
                "magnitude; PCM's hot writes cost energy and time; "
                "SRAM pays volatility (standby) and ~6x cell area.\n");

    sim::printPhaseTimes();
}

void
BM_DeviceSweep(benchmark::State &state)
{
    const auto net = nn::resnet18();
    const auto presets = circuit::allDevicePresets();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &preset : presets) {
            arch::IncaConfig cfg = arch::paperInca();
            cfg.device = preset.device;
            total += core::IncaEngine(cfg).training(net, 64).energy();
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_DeviceSweep);

} // namespace

INCA_BENCH_MAIN(report)
