/**
 * @file
 * Figure 7a: memory-access counts of WS vs. IS dataflow (16-bit data,
 * 256-bit bus) across the evaluation networks -- the paper finds WS
 * needs roughly 2x (ResNets) to 3x (VGGs) more accesses.
 *
 * Figure 7b: the number of input parameters an unrolled (GEMM-style)
 * IS layout would need versus direct convolution -- the paper reports
 * 4.4x / 5.0x / 8.0x / 2.1x for VGG16 / VGG19 / ResNet18 / ResNet50,
 * motivating INCA's 2T1R direct-convolution array.
 */

#include "bench_common.hh"

#include "common/table.hh"
#include "dataflow/access_model.hh"
#include "dataflow/unroll.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace inca;

void
report()
{
    bench::banner("Figure 7a: WS vs. IS memory accesses "
                  "(16-bit data, 256-bit bus)");
    const dataflow::AccessConfig cfg{16, 256};
    TextTable t7a({"network", "WS accesses", "IS accesses",
                   "WS / IS"});
    for (const auto &net : nn::evaluationSuite()) {
        const auto s = dataflow::networkAccesses(net, cfg);
        t7a.addRow({net.name, TextTable::count(double(s.baseline)),
                    TextTable::count(double(s.inca)),
                    TextTable::ratio(s.ratio())});
    }
    t7a.print();
    std::printf("paper: WS requires ~2x (ResNets) to ~3x (VGGs) more "
                "accesses; our WS accounting follows the printed Eqs. "
                "5/6 and lands above the paper's bars, preserving the "
                "ordering (VGGs > ResNets).\n");

    bench::banner("Figure 7b: unrolled vs. direct IS input "
                  "parameters");
    const double paper[] = {4.4, 5.0, 8.0, 2.1};
    TextTable t7b({"network", "unrolled", "direct", "ratio",
                   "paper"});
    const auto heavy = nn::heavySuite();
    for (size_t i = 0; i < heavy.size(); ++i) {
        const auto s = dataflow::unrollComparison(heavy[i]);
        t7b.addRow({heavy[i].name,
                    TextTable::count(double(s.unrolled)),
                    TextTable::count(double(s.direct)),
                    TextTable::ratio(s.ratio()),
                    TextTable::ratio(paper[i])});
    }
    for (const auto &net : {nn::mobilenetV2(), nn::mnasnet()}) {
        const auto s = dataflow::unrollComparison(net);
        t7b.addRow({net.name, TextTable::count(double(s.unrolled)),
                    TextTable::count(double(s.direct)),
                    TextTable::ratio(s.ratio()), "-"});
    }
    t7b.print();
}

void
BM_AccessCounting(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    const dataflow::AccessConfig cfg{16, 256};
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (const auto &net : suite)
            total += dataflow::networkAccesses(net, cfg).baseline;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_AccessCounting);

void
BM_UnrollCounting(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        std::int64_t total = 0;
        for (const auto &net : suite)
            total += dataflow::unrollComparison(net).unrolled;
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_UnrollCounting);

} // namespace

INCA_BENCH_MAIN(report)
