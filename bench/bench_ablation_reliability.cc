/**
 * @file
 * Ablation: what fault mitigation buys and what it costs. Sweeps the
 * write-verify retry budget and the spare-line provisioning at a fixed
 * raw fault rate, printing the residual error, the accuracy proxy, and
 * the energy/latency surcharge of each point -- the
 * robustness-vs-efficiency trade the reliability engine quantifies.
 * Table VI's noise study is the zero-mitigation column of this sweep.
 */

#include "bench_common.hh"

#include <vector>

#include "common/table.hh"
#include "reliability/campaign.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", v);
    return buf;
}

void
sweep(const std::string &title,
      const std::vector<reliability::MitigationSpec> &specs,
      const char *knobHeader,
      const std::vector<std::string> &knobLabels)
{
    bench::banner(title);
    TextTable t({knobHeader, "IS accuracy", "WS accuracy",
                 "IS resid BER", "IS E overhead", "IS t overhead"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        reliability::CampaignOptions opt;
        opt.network = "lenet5"; // smallest zoo member: bench stays fast
        opt.trials = 8;
        opt.bers = {1e-3};
        opt.lifetimes = {};
        opt.mitigation = specs[i];
        const auto result = reliability::runCampaign(opt);
        const reliability::CampaignPoint *is = nullptr, *ws = nullptr;
        for (const auto &curve : result.curves) {
            if (curve.engine == "inca")
                is = &curve.points[0];
            else
                ws = &curve.points[0];
        }
        const double eOver =
            is->idealEnergyJ > 0.0
                ? 100.0 * (is->energyJ / is->idealEnergyJ - 1.0)
                : 0.0;
        const double tOver =
            is->idealLatencyS > 0.0
                ? 100.0 * (is->latencyS / is->idealLatencyS - 1.0)
                : 0.0;
        t.addRow({knobLabels[i],
                  TextTable::num(100.0 * is->accuracy, 2) + " %",
                  TextTable::num(100.0 * ws->accuracy, 2) + " %",
                  sci(is->residualBer),
                  TextTable::num(eOver, 3) + " %",
                  TextTable::num(tOver, 3) + " %"});
        auto &report = bench::JsonReport::instance();
        report.addPoint(title + ".is_accuracy", knobLabels[i],
                        is->accuracy);
        report.addPoint(title + ".is_residual_ber", knobLabels[i],
                        is->residualBer);
        report.addPoint(title + ".is_energy_overhead", knobLabels[i],
                        eOver);
    }
    t.print();
}

void
report()
{
    {
        sim::ScopedPhaseTimer timer("retry sweep");
        std::vector<reliability::MitigationSpec> specs;
        std::vector<std::string> labels;
        for (const int r : {0, 1, 2, 4}) {
            reliability::MitigationSpec s;
            s.writeVerifyRetries = r;
            specs.push_back(s);
            labels.push_back(std::to_string(r));
        }
        sweep("Write-verify retry budget (raw BER 1e-3, no spares)",
              specs, "retries", labels);
    }
    {
        sim::ScopedPhaseTimer timer("spare sweep");
        std::vector<reliability::MitigationSpec> specs;
        std::vector<std::string> labels;
        for (const int sp : {0, 2, 4, 8}) {
            reliability::MitigationSpec s;
            s.writeVerifyRetries = 1;
            s.spareRows = sp;
            s.spareCols = sp / 2;
            specs.push_back(s);
            labels.push_back(std::to_string(sp) + "+" +
                             std::to_string(sp / 2));
        }
        sweep("Spare rows+cols (raw BER 1e-3, 1 retry)", specs,
              "spares", labels);
    }
    std::printf("retries buy exponential soft-error suppression for "
                "linear write-energy cost; spares buy hard-fault "
                "coverage until they exhaust.\n");
    sim::printPhaseTimes();
}

void
BM_CampaignPoint(benchmark::State &state)
{
    reliability::CampaignOptions opt;
    opt.network = "lenet5";
    opt.trials = 4;
    opt.bers = {1e-3};
    opt.lifetimes = {};
    opt.runWs = false;
    opt.mitigation.writeVerifyRetries = 2;
    opt.mitigation.spareRows = 4;
    for (auto _ : state) {
        // Vary the seed so the cache cannot short-circuit the work.
        opt.fault.seed = std::uint64_t(state.iterations());
        const auto result = reliability::runCampaign(opt);
        benchmark::DoNotOptimize(result.trialsRun);
    }
}
BENCHMARK(BM_CampaignPoint);

} // namespace

INCA_BENCH_MAIN(report)
