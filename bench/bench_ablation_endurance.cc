/**
 * @file
 * Ablation (paper Section VI, quantified): RRAM endurance under the
 * two dataflows. IS rewrites its activation cells at every layer of
 * every iteration -- the endurance price of the energy/latency wins
 * the paper reports -- while WS mostly rewrites weight cells at
 * updates. This bench turns the paper's qualitative future-work
 * concern into numbers: writes per cell per training iteration and
 * the iterations-to-wear-out at three device ratings.
 */

#include "bench_common.hh"

#include <vector>

#include "arch/endurance.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "nn/model_zoo.hh"
#include "sim/report.hh"

namespace {

using namespace inca;

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", v);
    return buf;
}

void
report()
{
    bench::banner("Section VI quantified: RRAM endurance under IS "
                  "vs. WS training (batch 64)");
    // Networks are independent: fan them across the pool into
    // pre-sized row slots so the table is identical at any thread
    // count.
    TextTable t({"network", "IS writes/cell/iter",
                 "WS writes/cell/iter", "IS iters @1e9",
                 "WS iters @1e9"});
    const auto suite = nn::evaluationSuite();
    std::vector<std::vector<std::string>> rows(suite.size());
    {
        sim::ScopedPhaseTimer timer("endurance suite");
        parallel_for(
            std::int64_t(suite.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const auto &net = suite[size_t(i)];
                    const auto is = arch::incaEndurance(
                        net, arch::paperInca(), 64);
                    const auto ws = arch::baselineEndurance(
                        net, arch::paperBaseline(), 64);
                    rows[size_t(i)] = {
                        net.name,
                        TextTable::num(is.writesPerCellPerIteration,
                                       2),
                        TextTable::num(ws.writesPerCellPerIteration,
                                       2),
                        sci(is.iterationsToWearOut),
                        sci(ws.iterationsToWearOut)};
                }
            });
    }
    for (const auto &row : rows)
        t.addRow(row);
    t.print();

    bench::banner("Device-rating sensitivity (ResNet18)");
    TextTable tr({"endurance rating", "IS iterations to wear-out",
                  "epochs of ImageNet (20k iters/epoch)"});
    const std::vector<double> ratings = {arch::kEnduranceConservative,
                                         arch::kEnduranceTypical,
                                         arch::kEnduranceOptimistic};
    std::vector<std::vector<std::string>> ratingRows(ratings.size());
    {
        sim::ScopedPhaseTimer timer("device-rating sweep");
        parallel_for(
            std::int64_t(ratings.size()), 1,
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i) {
                    const auto is = arch::incaEndurance(
                        nn::resnet18(), arch::paperInca(), 64,
                        ratings[size_t(i)]);
                    ratingRows[size_t(i)] = {
                        sci(ratings[size_t(i)]),
                        sci(is.iterationsToWearOut),
                        sci(is.iterationsToWearOut / 2.0e4)};
                }
            });
    }
    for (const auto &row : ratingRows)
        tr.addRow(row);
    tr.print();
    std::printf("the paper's reading holds: at today's ~1e9 ratings "
                "IS training is viable for many runs, at early-device "
                "1e6 it is not -- hence Section VI's reliance on "
                "endurance progress [25], [43].\n");

    sim::printPhaseTimes();
}

void
BM_EnduranceSweep(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &net : suite) {
            total += arch::incaEndurance(net, arch::paperInca(), 64)
                         .writesPerIteration;
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_EnduranceSweep);

} // namespace

INCA_BENCH_MAIN(report)
