/**
 * @file
 * Ablation (paper Section VI, quantified): RRAM endurance under the
 * two dataflows. IS rewrites its activation cells at every layer of
 * every iteration -- the endurance price of the energy/latency wins
 * the paper reports -- while WS mostly rewrites weight cells at
 * updates. This bench turns the paper's qualitative future-work
 * concern into numbers: writes per cell per training iteration and
 * the iterations-to-wear-out at three device ratings.
 */

#include "bench_common.hh"

#include "arch/endurance.hh"
#include "common/table.hh"
#include "nn/model_zoo.hh"

namespace {

using namespace inca;

std::string
sci(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2e", v);
    return buf;
}

void
report()
{
    bench::banner("Section VI quantified: RRAM endurance under IS "
                  "vs. WS training (batch 64)");
    TextTable t({"network", "IS writes/cell/iter",
                 "WS writes/cell/iter", "IS iters @1e9",
                 "WS iters @1e9"});
    for (const auto &net : nn::evaluationSuite()) {
        const auto is =
            arch::incaEndurance(net, arch::paperInca(), 64);
        const auto ws =
            arch::baselineEndurance(net, arch::paperBaseline(), 64);
        t.addRow({net.name,
                  TextTable::num(is.writesPerCellPerIteration, 2),
                  TextTable::num(ws.writesPerCellPerIteration, 2),
                  sci(is.iterationsToWearOut),
                  sci(ws.iterationsToWearOut)});
    }
    t.print();

    bench::banner("Device-rating sensitivity (ResNet18)");
    TextTable tr({"endurance rating", "IS iterations to wear-out",
                  "epochs of ImageNet (20k iters/epoch)"});
    for (double rating :
         {arch::kEnduranceConservative, arch::kEnduranceTypical,
          arch::kEnduranceOptimistic}) {
        const auto is = arch::incaEndurance(
            nn::resnet18(), arch::paperInca(), 64, rating);
        tr.addRow({sci(rating), sci(is.iterationsToWearOut),
                   sci(is.iterationsToWearOut / 2.0e4)});
    }
    tr.print();
    std::printf("the paper's reading holds: at today's ~1e9 ratings "
                "IS training is viable for many runs, at early-device "
                "1e6 it is not -- hence Section VI's reliance on "
                "endurance progress [25], [43].\n");
}

void
BM_EnduranceSweep(benchmark::State &state)
{
    const auto suite = nn::evaluationSuite();
    for (auto _ : state) {
        double total = 0.0;
        for (const auto &net : suite) {
            total += arch::incaEndurance(net, arch::paperInca(), 64)
                         .writesPerIteration;
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_EnduranceSweep);

} // namespace

INCA_BENCH_MAIN(report)
