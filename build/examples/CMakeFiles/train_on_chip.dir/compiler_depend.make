# Empty compiler generated dependencies file for train_on_chip.
# This may be replaced when dependencies are built.
