
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/train_on_chip.cpp" "examples/CMakeFiles/train_on_chip.dir/train_on_chip.cpp.o" "gcc" "examples/CMakeFiles/train_on_chip.dir/train_on_chip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/inca_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/inca_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/inca/CMakeFiles/inca_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/inca_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/inca_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/inca_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/inca_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/inca_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/inca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/inca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/inca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
