file(REMOVE_RECURSE
  "CMakeFiles/train_on_chip.dir/train_on_chip.cpp.o"
  "CMakeFiles/train_on_chip.dir/train_on_chip.cpp.o.d"
  "train_on_chip"
  "train_on_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_on_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
