file(REMOVE_RECURSE
  "CMakeFiles/test_engine_sweeps.dir/test_engine_sweeps.cc.o"
  "CMakeFiles/test_engine_sweeps.dir/test_engine_sweeps.cc.o.d"
  "test_engine_sweeps"
  "test_engine_sweeps.pdb"
  "test_engine_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
