# Empty dependencies file for test_ws_training.
# This may be replaced when dependencies are built.
