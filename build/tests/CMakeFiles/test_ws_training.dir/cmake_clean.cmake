file(REMOVE_RECURSE
  "CMakeFiles/test_ws_training.dir/test_ws_training.cc.o"
  "CMakeFiles/test_ws_training.dir/test_ws_training.cc.o.d"
  "test_ws_training"
  "test_ws_training.pdb"
  "test_ws_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ws_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
