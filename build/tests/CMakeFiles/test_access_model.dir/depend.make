# Empty dependencies file for test_access_model.
# This may be replaced when dependencies are built.
