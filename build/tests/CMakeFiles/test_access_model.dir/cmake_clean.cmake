file(REMOVE_RECURSE
  "CMakeFiles/test_access_model.dir/test_access_model.cc.o"
  "CMakeFiles/test_access_model.dir/test_access_model.cc.o.d"
  "test_access_model"
  "test_access_model.pdb"
  "test_access_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
