file(REMOVE_RECURSE
  "CMakeFiles/test_inca_mapping.dir/test_inca_mapping.cc.o"
  "CMakeFiles/test_inca_mapping.dir/test_inca_mapping.cc.o.d"
  "test_inca_mapping"
  "test_inca_mapping.pdb"
  "test_inca_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inca_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
