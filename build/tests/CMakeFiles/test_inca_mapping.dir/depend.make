# Empty dependencies file for test_inca_mapping.
# This may be replaced when dependencies are built.
