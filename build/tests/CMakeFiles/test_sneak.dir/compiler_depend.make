# Empty compiler generated dependencies file for test_sneak.
# This may be replaced when dependencies are built.
