file(REMOVE_RECURSE
  "CMakeFiles/test_sneak.dir/test_sneak.cc.o"
  "CMakeFiles/test_sneak.dir/test_sneak.cc.o.d"
  "test_sneak"
  "test_sneak.pdb"
  "test_sneak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sneak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
