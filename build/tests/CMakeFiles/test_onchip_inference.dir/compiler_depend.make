# Empty compiler generated dependencies file for test_onchip_inference.
# This may be replaced when dependencies are built.
