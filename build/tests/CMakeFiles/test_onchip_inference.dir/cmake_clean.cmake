file(REMOVE_RECURSE
  "CMakeFiles/test_onchip_inference.dir/test_onchip_inference.cc.o"
  "CMakeFiles/test_onchip_inference.dir/test_onchip_inference.cc.o.d"
  "test_onchip_inference"
  "test_onchip_inference.pdb"
  "test_onchip_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onchip_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
