file(REMOVE_RECURSE
  "CMakeFiles/test_ws_crossbar.dir/test_ws_crossbar.cc.o"
  "CMakeFiles/test_ws_crossbar.dir/test_ws_crossbar.cc.o.d"
  "test_ws_crossbar"
  "test_ws_crossbar.pdb"
  "test_ws_crossbar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ws_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
