# Empty compiler generated dependencies file for test_ws_crossbar.
# This may be replaced when dependencies are built.
