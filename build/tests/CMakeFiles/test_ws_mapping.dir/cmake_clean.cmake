file(REMOVE_RECURSE
  "CMakeFiles/test_ws_mapping.dir/test_ws_mapping.cc.o"
  "CMakeFiles/test_ws_mapping.dir/test_ws_mapping.cc.o.d"
  "test_ws_mapping"
  "test_ws_mapping.pdb"
  "test_ws_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ws_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
