# Empty dependencies file for test_ws_mapping.
# This may be replaced when dependencies are built.
