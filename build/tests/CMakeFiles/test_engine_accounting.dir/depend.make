# Empty dependencies file for test_engine_accounting.
# This may be replaced when dependencies are built.
