file(REMOVE_RECURSE
  "CMakeFiles/test_cross_model_consistency.dir/test_cross_model_consistency.cc.o"
  "CMakeFiles/test_cross_model_consistency.dir/test_cross_model_consistency.cc.o.d"
  "test_cross_model_consistency"
  "test_cross_model_consistency.pdb"
  "test_cross_model_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_model_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
