# Empty compiler generated dependencies file for test_cross_model_consistency.
# This may be replaced when dependencies are built.
