file(REMOVE_RECURSE
  "CMakeFiles/test_inca_functional.dir/test_inca_functional.cc.o"
  "CMakeFiles/test_inca_functional.dir/test_inca_functional.cc.o.d"
  "test_inca_functional"
  "test_inca_functional.pdb"
  "test_inca_functional[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inca_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
