# Empty dependencies file for test_inca_functional.
# This may be replaced when dependencies are built.
