file(REMOVE_RECURSE
  "libinca_core.a"
)
