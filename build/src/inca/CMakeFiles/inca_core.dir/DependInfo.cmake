
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inca/engine.cc" "src/inca/CMakeFiles/inca_core.dir/engine.cc.o" "gcc" "src/inca/CMakeFiles/inca_core.dir/engine.cc.o.d"
  "/root/repo/src/inca/functional.cc" "src/inca/CMakeFiles/inca_core.dir/functional.cc.o" "gcc" "src/inca/CMakeFiles/inca_core.dir/functional.cc.o.d"
  "/root/repo/src/inca/inference.cc" "src/inca/CMakeFiles/inca_core.dir/inference.cc.o" "gcc" "src/inca/CMakeFiles/inca_core.dir/inference.cc.o.d"
  "/root/repo/src/inca/mapping.cc" "src/inca/CMakeFiles/inca_core.dir/mapping.cc.o" "gcc" "src/inca/CMakeFiles/inca_core.dir/mapping.cc.o.d"
  "/root/repo/src/inca/plane.cc" "src/inca/CMakeFiles/inca_core.dir/plane.cc.o" "gcc" "src/inca/CMakeFiles/inca_core.dir/plane.cc.o.d"
  "/root/repo/src/inca/stack3d.cc" "src/inca/CMakeFiles/inca_core.dir/stack3d.cc.o" "gcc" "src/inca/CMakeFiles/inca_core.dir/stack3d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/inca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/inca_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/inca_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/inca_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/inca_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/inca_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/inca_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
