# Empty dependencies file for inca_core.
# This may be replaced when dependencies are built.
