file(REMOVE_RECURSE
  "CMakeFiles/inca_core.dir/engine.cc.o"
  "CMakeFiles/inca_core.dir/engine.cc.o.d"
  "CMakeFiles/inca_core.dir/functional.cc.o"
  "CMakeFiles/inca_core.dir/functional.cc.o.d"
  "CMakeFiles/inca_core.dir/inference.cc.o"
  "CMakeFiles/inca_core.dir/inference.cc.o.d"
  "CMakeFiles/inca_core.dir/mapping.cc.o"
  "CMakeFiles/inca_core.dir/mapping.cc.o.d"
  "CMakeFiles/inca_core.dir/plane.cc.o"
  "CMakeFiles/inca_core.dir/plane.cc.o.d"
  "CMakeFiles/inca_core.dir/stack3d.cc.o"
  "CMakeFiles/inca_core.dir/stack3d.cc.o.d"
  "libinca_core.a"
  "libinca_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
