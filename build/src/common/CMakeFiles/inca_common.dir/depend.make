# Empty dependencies file for inca_common.
# This may be replaced when dependencies are built.
