file(REMOVE_RECURSE
  "libinca_common.a"
)
