file(REMOVE_RECURSE
  "CMakeFiles/inca_common.dir/config.cc.o"
  "CMakeFiles/inca_common.dir/config.cc.o.d"
  "CMakeFiles/inca_common.dir/logging.cc.o"
  "CMakeFiles/inca_common.dir/logging.cc.o.d"
  "CMakeFiles/inca_common.dir/random.cc.o"
  "CMakeFiles/inca_common.dir/random.cc.o.d"
  "CMakeFiles/inca_common.dir/stats.cc.o"
  "CMakeFiles/inca_common.dir/stats.cc.o.d"
  "CMakeFiles/inca_common.dir/table.cc.o"
  "CMakeFiles/inca_common.dir/table.cc.o.d"
  "CMakeFiles/inca_common.dir/units.cc.o"
  "CMakeFiles/inca_common.dir/units.cc.o.d"
  "libinca_common.a"
  "libinca_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
