file(REMOVE_RECURSE
  "libinca_nn.a"
)
