
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cc" "src/nn/CMakeFiles/inca_nn.dir/dataset.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/dataset.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/inca_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/inca_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/inca_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/inca_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/noise.cc" "src/nn/CMakeFiles/inca_nn.dir/noise.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/noise.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/inca_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/inca_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/inca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/inca_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
