file(REMOVE_RECURSE
  "CMakeFiles/inca_nn.dir/dataset.cc.o"
  "CMakeFiles/inca_nn.dir/dataset.cc.o.d"
  "CMakeFiles/inca_nn.dir/layer.cc.o"
  "CMakeFiles/inca_nn.dir/layer.cc.o.d"
  "CMakeFiles/inca_nn.dir/model_zoo.cc.o"
  "CMakeFiles/inca_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/inca_nn.dir/module.cc.o"
  "CMakeFiles/inca_nn.dir/module.cc.o.d"
  "CMakeFiles/inca_nn.dir/network.cc.o"
  "CMakeFiles/inca_nn.dir/network.cc.o.d"
  "CMakeFiles/inca_nn.dir/noise.cc.o"
  "CMakeFiles/inca_nn.dir/noise.cc.o.d"
  "CMakeFiles/inca_nn.dir/trainer.cc.o"
  "CMakeFiles/inca_nn.dir/trainer.cc.o.d"
  "libinca_nn.a"
  "libinca_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
