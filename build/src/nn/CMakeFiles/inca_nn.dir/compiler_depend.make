# Empty compiler generated dependencies file for inca_nn.
# This may be replaced when dependencies are built.
