# Empty dependencies file for inca_memory.
# This may be replaced when dependencies are built.
