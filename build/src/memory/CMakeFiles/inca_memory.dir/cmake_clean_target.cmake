file(REMOVE_RECURSE
  "libinca_memory.a"
)
