file(REMOVE_RECURSE
  "CMakeFiles/inca_memory.dir/bus.cc.o"
  "CMakeFiles/inca_memory.dir/bus.cc.o.d"
  "CMakeFiles/inca_memory.dir/dram.cc.o"
  "CMakeFiles/inca_memory.dir/dram.cc.o.d"
  "CMakeFiles/inca_memory.dir/interconnect.cc.o"
  "CMakeFiles/inca_memory.dir/interconnect.cc.o.d"
  "CMakeFiles/inca_memory.dir/sram.cc.o"
  "CMakeFiles/inca_memory.dir/sram.cc.o.d"
  "libinca_memory.a"
  "libinca_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
