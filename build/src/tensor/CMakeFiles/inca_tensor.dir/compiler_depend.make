# Empty compiler generated dependencies file for inca_tensor.
# This may be replaced when dependencies are built.
