file(REMOVE_RECURSE
  "CMakeFiles/inca_tensor.dir/ops.cc.o"
  "CMakeFiles/inca_tensor.dir/ops.cc.o.d"
  "CMakeFiles/inca_tensor.dir/tensor.cc.o"
  "CMakeFiles/inca_tensor.dir/tensor.cc.o.d"
  "libinca_tensor.a"
  "libinca_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
