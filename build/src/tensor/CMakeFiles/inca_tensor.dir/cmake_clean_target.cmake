file(REMOVE_RECURSE
  "libinca_tensor.a"
)
