# Empty compiler generated dependencies file for inca_baseline.
# This may be replaced when dependencies are built.
