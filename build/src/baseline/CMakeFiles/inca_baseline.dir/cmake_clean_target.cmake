file(REMOVE_RECURSE
  "libinca_baseline.a"
)
