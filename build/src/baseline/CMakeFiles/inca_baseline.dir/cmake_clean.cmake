file(REMOVE_RECURSE
  "CMakeFiles/inca_baseline.dir/crossbar.cc.o"
  "CMakeFiles/inca_baseline.dir/crossbar.cc.o.d"
  "CMakeFiles/inca_baseline.dir/engine.cc.o"
  "CMakeFiles/inca_baseline.dir/engine.cc.o.d"
  "CMakeFiles/inca_baseline.dir/mapping.cc.o"
  "CMakeFiles/inca_baseline.dir/mapping.cc.o.d"
  "CMakeFiles/inca_baseline.dir/training.cc.o"
  "CMakeFiles/inca_baseline.dir/training.cc.o.d"
  "libinca_baseline.a"
  "libinca_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
