file(REMOVE_RECURSE
  "libinca_circuit.a"
)
