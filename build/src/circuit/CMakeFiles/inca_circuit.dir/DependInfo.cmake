
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/adc.cc" "src/circuit/CMakeFiles/inca_circuit.dir/adc.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/adc.cc.o.d"
  "/root/repo/src/circuit/cells.cc" "src/circuit/CMakeFiles/inca_circuit.dir/cells.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/cells.cc.o.d"
  "/root/repo/src/circuit/devices.cc" "src/circuit/CMakeFiles/inca_circuit.dir/devices.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/devices.cc.o.d"
  "/root/repo/src/circuit/digital.cc" "src/circuit/CMakeFiles/inca_circuit.dir/digital.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/digital.cc.o.d"
  "/root/repo/src/circuit/rram.cc" "src/circuit/CMakeFiles/inca_circuit.dir/rram.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/rram.cc.o.d"
  "/root/repo/src/circuit/rram3d.cc" "src/circuit/CMakeFiles/inca_circuit.dir/rram3d.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/rram3d.cc.o.d"
  "/root/repo/src/circuit/sneak.cc" "src/circuit/CMakeFiles/inca_circuit.dir/sneak.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/sneak.cc.o.d"
  "/root/repo/src/circuit/tech.cc" "src/circuit/CMakeFiles/inca_circuit.dir/tech.cc.o" "gcc" "src/circuit/CMakeFiles/inca_circuit.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/inca_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
