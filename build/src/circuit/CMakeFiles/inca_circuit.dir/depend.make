# Empty dependencies file for inca_circuit.
# This may be replaced when dependencies are built.
