file(REMOVE_RECURSE
  "CMakeFiles/inca_circuit.dir/adc.cc.o"
  "CMakeFiles/inca_circuit.dir/adc.cc.o.d"
  "CMakeFiles/inca_circuit.dir/cells.cc.o"
  "CMakeFiles/inca_circuit.dir/cells.cc.o.d"
  "CMakeFiles/inca_circuit.dir/devices.cc.o"
  "CMakeFiles/inca_circuit.dir/devices.cc.o.d"
  "CMakeFiles/inca_circuit.dir/digital.cc.o"
  "CMakeFiles/inca_circuit.dir/digital.cc.o.d"
  "CMakeFiles/inca_circuit.dir/rram.cc.o"
  "CMakeFiles/inca_circuit.dir/rram.cc.o.d"
  "CMakeFiles/inca_circuit.dir/rram3d.cc.o"
  "CMakeFiles/inca_circuit.dir/rram3d.cc.o.d"
  "CMakeFiles/inca_circuit.dir/sneak.cc.o"
  "CMakeFiles/inca_circuit.dir/sneak.cc.o.d"
  "CMakeFiles/inca_circuit.dir/tech.cc.o"
  "CMakeFiles/inca_circuit.dir/tech.cc.o.d"
  "libinca_circuit.a"
  "libinca_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
