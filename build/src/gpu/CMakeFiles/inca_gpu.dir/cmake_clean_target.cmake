file(REMOVE_RECURSE
  "libinca_gpu.a"
)
