file(REMOVE_RECURSE
  "CMakeFiles/inca_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/inca_gpu.dir/gpu_model.cc.o.d"
  "libinca_gpu.a"
  "libinca_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
