# Empty compiler generated dependencies file for inca_gpu.
# This may be replaced when dependencies are built.
