file(REMOVE_RECURSE
  "libinca_arch.a"
)
