file(REMOVE_RECURSE
  "CMakeFiles/inca_arch.dir/area.cc.o"
  "CMakeFiles/inca_arch.dir/area.cc.o.d"
  "CMakeFiles/inca_arch.dir/config.cc.o"
  "CMakeFiles/inca_arch.dir/config.cc.o.d"
  "CMakeFiles/inca_arch.dir/endurance.cc.o"
  "CMakeFiles/inca_arch.dir/endurance.cc.o.d"
  "CMakeFiles/inca_arch.dir/power.cc.o"
  "CMakeFiles/inca_arch.dir/power.cc.o.d"
  "CMakeFiles/inca_arch.dir/utilization.cc.o"
  "CMakeFiles/inca_arch.dir/utilization.cc.o.d"
  "libinca_arch.a"
  "libinca_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
