# Empty dependencies file for inca_arch.
# This may be replaced when dependencies are built.
