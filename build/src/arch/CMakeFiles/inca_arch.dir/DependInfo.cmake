
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/area.cc" "src/arch/CMakeFiles/inca_arch.dir/area.cc.o" "gcc" "src/arch/CMakeFiles/inca_arch.dir/area.cc.o.d"
  "/root/repo/src/arch/config.cc" "src/arch/CMakeFiles/inca_arch.dir/config.cc.o" "gcc" "src/arch/CMakeFiles/inca_arch.dir/config.cc.o.d"
  "/root/repo/src/arch/endurance.cc" "src/arch/CMakeFiles/inca_arch.dir/endurance.cc.o" "gcc" "src/arch/CMakeFiles/inca_arch.dir/endurance.cc.o.d"
  "/root/repo/src/arch/power.cc" "src/arch/CMakeFiles/inca_arch.dir/power.cc.o" "gcc" "src/arch/CMakeFiles/inca_arch.dir/power.cc.o.d"
  "/root/repo/src/arch/utilization.cc" "src/arch/CMakeFiles/inca_arch.dir/utilization.cc.o" "gcc" "src/arch/CMakeFiles/inca_arch.dir/utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/inca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/inca_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/inca_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/inca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/inca_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
