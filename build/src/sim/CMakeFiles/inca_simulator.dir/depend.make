# Empty dependencies file for inca_simulator.
# This may be replaced when dependencies are built.
