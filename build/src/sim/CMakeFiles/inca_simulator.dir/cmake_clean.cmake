file(REMOVE_RECURSE
  "CMakeFiles/inca_simulator.dir/export.cc.o"
  "CMakeFiles/inca_simulator.dir/export.cc.o.d"
  "CMakeFiles/inca_simulator.dir/plot.cc.o"
  "CMakeFiles/inca_simulator.dir/plot.cc.o.d"
  "CMakeFiles/inca_simulator.dir/report.cc.o"
  "CMakeFiles/inca_simulator.dir/report.cc.o.d"
  "CMakeFiles/inca_simulator.dir/schedule.cc.o"
  "CMakeFiles/inca_simulator.dir/schedule.cc.o.d"
  "libinca_simulator.a"
  "libinca_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
