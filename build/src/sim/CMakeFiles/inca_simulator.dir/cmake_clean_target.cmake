file(REMOVE_RECURSE
  "libinca_simulator.a"
)
