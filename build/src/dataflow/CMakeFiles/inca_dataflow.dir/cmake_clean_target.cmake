file(REMOVE_RECURSE
  "libinca_dataflow.a"
)
