
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/access_model.cc" "src/dataflow/CMakeFiles/inca_dataflow.dir/access_model.cc.o" "gcc" "src/dataflow/CMakeFiles/inca_dataflow.dir/access_model.cc.o.d"
  "/root/repo/src/dataflow/footprint.cc" "src/dataflow/CMakeFiles/inca_dataflow.dir/footprint.cc.o" "gcc" "src/dataflow/CMakeFiles/inca_dataflow.dir/footprint.cc.o.d"
  "/root/repo/src/dataflow/unroll.cc" "src/dataflow/CMakeFiles/inca_dataflow.dir/unroll.cc.o" "gcc" "src/dataflow/CMakeFiles/inca_dataflow.dir/unroll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/inca_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/inca_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/inca_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/inca_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
