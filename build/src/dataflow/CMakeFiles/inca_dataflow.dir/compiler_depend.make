# Empty compiler generated dependencies file for inca_dataflow.
# This may be replaced when dependencies are built.
