file(REMOVE_RECURSE
  "CMakeFiles/inca_dataflow.dir/access_model.cc.o"
  "CMakeFiles/inca_dataflow.dir/access_model.cc.o.d"
  "CMakeFiles/inca_dataflow.dir/footprint.cc.o"
  "CMakeFiles/inca_dataflow.dir/footprint.cc.o.d"
  "CMakeFiles/inca_dataflow.dir/unroll.cc.o"
  "CMakeFiles/inca_dataflow.dir/unroll.cc.o.d"
  "libinca_dataflow.a"
  "libinca_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inca_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
