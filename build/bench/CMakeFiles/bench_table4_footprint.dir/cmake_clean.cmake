file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_footprint.dir/bench_table4_footprint.cc.o"
  "CMakeFiles/bench_table4_footprint.dir/bench_table4_footprint.cc.o.d"
  "bench_table4_footprint"
  "bench_table4_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
