# Empty dependencies file for bench_table4_footprint.
# This may be replaced when dependencies are built.
