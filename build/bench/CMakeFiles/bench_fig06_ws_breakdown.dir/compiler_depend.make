# Empty compiler generated dependencies file for bench_fig06_ws_breakdown.
# This may be replaced when dependencies are built.
