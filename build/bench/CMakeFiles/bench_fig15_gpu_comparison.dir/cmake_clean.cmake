file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_gpu_comparison.dir/bench_fig15_gpu_comparison.cc.o"
  "CMakeFiles/bench_fig15_gpu_comparison.dir/bench_fig15_gpu_comparison.cc.o.d"
  "bench_fig15_gpu_comparison"
  "bench_fig15_gpu_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_gpu_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
