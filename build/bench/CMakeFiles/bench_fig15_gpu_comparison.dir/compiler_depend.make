# Empty compiler generated dependencies file for bench_fig15_gpu_comparison.
# This may be replaced when dependencies are built.
