file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_access_unroll.dir/bench_fig07_access_unroll.cc.o"
  "CMakeFiles/bench_fig07_access_unroll.dir/bench_fig07_access_unroll.cc.o.d"
  "bench_fig07_access_unroll"
  "bench_fig07_access_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_access_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
