file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_buffer_accesses.dir/bench_table3_buffer_accesses.cc.o"
  "CMakeFiles/bench_table3_buffer_accesses.dir/bench_table3_buffer_accesses.cc.o.d"
  "bench_table3_buffer_accesses"
  "bench_table3_buffer_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_buffer_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
