# Empty dependencies file for bench_table3_buffer_accesses.
# This may be replaced when dependencies are built.
