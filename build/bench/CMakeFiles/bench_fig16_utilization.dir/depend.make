# Empty dependencies file for bench_fig16_utilization.
# This may be replaced when dependencies are built.
