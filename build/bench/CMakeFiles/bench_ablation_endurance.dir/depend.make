# Empty dependencies file for bench_ablation_endurance.
# This may be replaced when dependencies are built.
