file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_endurance.dir/bench_ablation_endurance.cc.o"
  "CMakeFiles/bench_ablation_endurance.dir/bench_ablation_endurance.cc.o.d"
  "bench_ablation_endurance"
  "bench_ablation_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
