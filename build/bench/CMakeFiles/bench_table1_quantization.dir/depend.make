# Empty dependencies file for bench_table1_quantization.
# This may be replaced when dependencies are built.
