file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_quantization.dir/bench_table1_quantization.cc.o"
  "CMakeFiles/bench_table1_quantization.dir/bench_table1_quantization.cc.o.d"
  "bench_table1_quantization"
  "bench_table1_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
