# Empty compiler generated dependencies file for bench_fig01b_dram_latency.
# This may be replaced when dependencies are built.
